//! Maximum bipartite matching.
//!
//! Ford and Fulkerson's transformation (paper §3.1, [FoF65]) reduces
//! minimum chain decomposition of a partial order to maximum matching in a
//! bipartite graph whose left and right vertex classes are both copies of
//! the node set and whose edges are the pairs of the `CanReuse` relation.
//! Each matched pair `(a, b)` links `a`'s chain to continue at `b`; with a
//! maximum matching the number of chains `n − |M|` is minimal.
//!
//! Two engines are provided:
//!
//! * [`hopcroft_karp`] — the O(E·√V) algorithm, used when any maximum
//!   matching will do.
//! * [`IncrementalMatcher`] — warm-start augmentation that accepts edges
//!   in batches while preserving the matching found so far.
//!   This implements the paper's *modified* algorithm: edges are added in
//!   priority tiers (by hammock-nesting-level difference) and augmentation
//!   is re-run after each tier (by the same Hopcroft–Karp phase loop,
//!   started from the carried matching), so earlier tiers are preferred.
//!   Worst case O(V·E) ⊆ O(N³) for dense relations, matching the paper's
//!   bound.

use crate::meter::{Unmetered, WorkMeter};

/// A matching between `n_left` left vertices and `n_right` right vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `left_to_right[l]` is the right partner of `l`, if matched.
    pub left_to_right: Vec<Option<usize>>,
    /// `right_to_left[r]` is the left partner of `r`, if matched.
    pub right_to_left: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching over the given class sizes.
    pub fn empty(n_left: usize, n_right: usize) -> Self {
        Matching {
            left_to_right: vec![None; n_left],
            right_to_left: vec![None; n_right],
        }
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.left_to_right.iter().filter(|p| p.is_some()).count()
    }

    /// `true` if nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks internal consistency: the two direction maps must mirror
    /// each other exactly. Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        self.left_to_right
            .iter()
            .enumerate()
            .all(|(l, &r)| match r {
                Some(r) => self.right_to_left.get(r).copied().flatten() == Some(l),
                None => true,
            })
            && self
                .right_to_left
                .iter()
                .enumerate()
                .all(|(r, &l)| match l {
                    Some(l) => self.left_to_right.get(l).copied().flatten() == Some(r),
                    None => true,
                })
    }
}

/// Computes a maximum matching with the Hopcroft–Karp algorithm.
///
/// `adj[l]` lists the right-vertices adjacent to left-vertex `l`.
///
/// # Examples
///
/// ```
/// use ursa_graph::matching::hopcroft_karp;
///
/// // A perfect matching on a 2x2 crown.
/// let adj = vec![vec![0, 1], vec![0]];
/// let m = hopcroft_karp(2, 2, &adj);
/// assert_eq!(m.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if any adjacency entry is out of range.
pub fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), n_left, "one adjacency list per left vertex");
    for (l, row) in adj.iter().enumerate() {
        for &r in row {
            assert!(r < n_right, "right vertex {r} out of range (edge from {l})");
        }
    }
    let mut m = Matching::empty(n_left, n_right);
    hk_phases(adj, &mut m, &Unmetered);
    debug_assert!(m.is_consistent());
    m
}

/// [`hopcroft_karp`] with a cooperative [`WorkMeter`]: if the meter
/// exhausts between augmentation phases, the returned matching is valid
/// and consistent but possibly sub-maximum.
///
/// # Panics
///
/// Panics if any adjacency entry is out of range.
pub fn hopcroft_karp_metered(
    n_left: usize,
    n_right: usize,
    adj: &[Vec<usize>],
    meter: &dyn WorkMeter,
) -> Matching {
    assert_eq!(adj.len(), n_left, "one adjacency list per left vertex");
    for (l, row) in adj.iter().enumerate() {
        for &r in row {
            assert!(r < n_right, "right vertex {r} out of range (edge from {l})");
        }
    }
    let mut m = Matching::empty(n_left, n_right);
    hk_phases(adj, &mut m, meter);
    debug_assert!(m.is_consistent());
    m
}

/// Runs Hopcroft–Karp BFS/DFS phases over `adj` until `m` is maximum —
/// or until `meter` exhausts, in which case `m` is left a valid,
/// consistent, possibly sub-maximum matching (the augmentation-phase
/// cancellation point: a smaller matching measures a strictly *higher*
/// chain count, so early exit is always conservative for URSA).
///
/// Warm-start safe: `m` may already hold a partial matching (e.g. one
/// carried across incremental edits); phases only ever *augment*, so
/// cardinality never decreases and the O(E√V) phase bound still holds.
/// When no augmenting path exists, a single O(E) BFS proves it for every
/// free left vertex at once. The meter is charged once per phase, with
/// the number of left vertices as the unit weight.
fn hk_phases(adj: &[Vec<usize>], m: &mut Matching, meter: &dyn WorkMeter) {
    const INF: u32 = u32::MAX;
    let n_left = adj.len();
    let mut dist = vec![INF; n_left];
    let mut queue = Vec::with_capacity(n_left);

    loop {
        if !meter.charge(1 + n_left as u64) {
            break;
        }
        // BFS phase: layer the free left vertices.
        queue.clear();
        for (l, d) in dist.iter_mut().enumerate() {
            if m.left_to_right[l].is_none() {
                *d = 0;
                queue.push(l);
            } else {
                *d = INF;
            }
        }
        let mut found_augmenting = false;
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &r in &adj[l] {
                match m.right_to_left[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.
        fn dfs(l: usize, adj: &[Vec<usize>], m: &mut Matching, dist: &mut [u32]) -> bool {
            for i in 0..adj[l].len() {
                let r = adj[l][i];
                let advance = match m.right_to_left[r] {
                    None => true,
                    Some(l2) => dist[l2] == dist[l] + 1 && dfs(l2, adj, m, dist),
                };
                if advance {
                    m.left_to_right[l] = Some(r);
                    m.right_to_left[r] = Some(l);
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n_left {
            if m.left_to_right[l].is_none() && dist[l] == 0 {
                dfs(l, adj, m, &mut dist);
            }
        }
    }
}

/// Maximum matching with incremental edge insertion.
///
/// The paper's hammock-aware decomposition (§3.1) adds bipartite edges in
/// sets of decreasing priority and re-runs the "normal augmenting path
/// matching algorithm" after each set, so that the final maximum matching
/// prefers high-priority edges wherever possible. `IncrementalMatcher`
/// keeps the matching across [`IncrementalMatcher::add_edge`] /
/// [`IncrementalMatcher::maximize`] rounds to realize exactly that;
/// `maximize` warm-starts the Hopcroft–Karp phase loop from the carried
/// matching, so each round costs O(E·√V) instead of one Kuhn DFS per
/// unmatched vertex.
///
/// # Examples
///
/// ```
/// use ursa_graph::matching::IncrementalMatcher;
///
/// let mut m = IncrementalMatcher::new(2, 2);
/// m.add_edge(0, 0);
/// assert_eq!(m.maximize(), 1);
/// m.add_edge(0, 1);
/// m.add_edge(1, 0);
/// assert_eq!(m.maximize(), 2);
/// // Vertex 0's original high-priority partner may move, but the first
/// // tier's cardinality is never sacrificed.
/// assert_eq!(m.matching().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalMatcher {
    n_right: usize,
    adj: Vec<Vec<usize>>,
    matching: Matching,
}

impl IncrementalMatcher {
    /// Creates a matcher over empty vertex classes of the given sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        IncrementalMatcher {
            n_right,
            adj: vec![Vec::new(); n_left],
            matching: Matching::empty(n_left, n_right),
        }
    }

    /// Inserts the edge `(l, r)`. Duplicates are ignored; returns `true`
    /// when the edge was actually new (callers journaling edits for a
    /// later revert use this to know whether the row grew).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) -> bool {
        assert!(l < self.adj.len(), "left vertex {l} out of range");
        assert!(r < self.n_right, "right vertex {r} out of range");
        if self.adj[l].contains(&r) {
            false
        } else {
            self.adj[l].push(r);
            true
        }
    }

    /// [`Self::add_edge`] without the duplicate scan — the scan is
    /// O(degree) per call, which turns bulk loading of a dense relation
    /// into O(Σ degree²). Callers must guarantee `(l, r)` has not been
    /// inserted before (e.g. enumeration of distinct index pairs); a
    /// duplicate would let augmentation revisit the edge pointlessly
    /// but never produce an inconsistent matching.
    pub fn add_edge_unchecked(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len(), "left vertex {l} out of range");
        assert!(r < self.n_right, "right vertex {r} out of range");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// The current adjacency row of left vertex `l`.
    pub fn row(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }

    /// Replaces the adjacency row of `l` wholesale, returning the old
    /// row. If `l` was matched to a right vertex the new row no longer
    /// contains, the pair is dissolved (the matching stays consistent but
    /// may drop below maximum — call [`IncrementalMatcher::maximize`]
    /// afterwards).
    ///
    /// # Panics
    ///
    /// Panics if any right vertex in `row` is out of range.
    pub fn set_row(&mut self, l: usize, row: Vec<usize>) -> Vec<usize> {
        for &r in &row {
            assert!(r < self.n_right, "right vertex {r} out of range");
        }
        if let Some(r) = self.matching.left_to_right[l] {
            if !row.contains(&r) {
                self.matching.left_to_right[l] = None;
                self.matching.right_to_left[r] = None;
            }
        }
        std::mem::replace(&mut self.adj[l], row)
    }

    /// Truncates the adjacency row of `l` back to `len` entries,
    /// dissolving `l`'s pair if its partner falls off the end. This is
    /// the exact inverse of a run of successful
    /// [`IncrementalMatcher::add_edge`] calls on `l` (appends preserve
    /// prefix order), so reverting an edit needs only the old length.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current row length.
    pub fn truncate_row(&mut self, l: usize, len: usize) {
        assert!(len <= self.adj[l].len(), "cannot grow a row by truncation");
        if let Some(r) = self.matching.left_to_right[l] {
            if !self.adj[l][..len].contains(&r) {
                self.matching.left_to_right[l] = None;
                self.matching.right_to_left[r] = None;
            }
        }
        self.adj[l].truncate(len);
    }

    /// Dissolves `l`'s matched pair, if any.
    pub fn unmatch_left(&mut self, l: usize) {
        if let Some(r) = self.matching.left_to_right[l].take() {
            self.matching.right_to_left[r] = None;
        }
    }

    /// Replaces the current matching wholesale (used to restore a
    /// snapshot when reverting a batch of edits).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's class sizes disagree with the matcher's,
    /// or if any matched edge is absent from the current adjacency.
    pub fn restore_matching(&mut self, m: Matching) {
        assert_eq!(m.left_to_right.len(), self.adj.len(), "left size mismatch");
        assert_eq!(m.right_to_left.len(), self.n_right, "right size mismatch");
        debug_assert!(m.is_consistent());
        debug_assert!(
            m.left_to_right
                .iter()
                .enumerate()
                .all(|(l, r)| r.is_none_or(|r| self.adj[l].contains(&r))),
            "restored matching uses an edge absent from the adjacency"
        );
        self.matching = m;
    }

    /// Augments until maximum over the edges inserted so far; returns the
    /// matching cardinality. Previously matched pairs may be re-routed but
    /// cardinality never decreases.
    ///
    /// Runs Hopcroft–Karp phases warm-started from the carried matching:
    /// when an edit leaves most pairs intact, only the freed vertices are
    /// re-augmented, and a single BFS certifies maximality for all of
    /// them together — per-free-vertex O(E) scans would dominate
    /// incremental probes on large dense reuse graphs.
    pub fn maximize(&mut self) -> usize {
        hk_phases(&self.adj, &mut self.matching, &Unmetered);
        debug_assert!(self.matching.is_consistent());
        self.matching.len()
    }

    /// [`IncrementalMatcher::maximize`] with a cooperative [`WorkMeter`].
    /// If the meter exhausts between augmentation phases the carried
    /// matching stays valid and consistent but may be sub-maximum;
    /// `charge(0)` on the meter tells the caller which case occurred.
    pub fn maximize_metered(&mut self, meter: &dyn WorkMeter) -> usize {
        hk_phases(&self.adj, &mut self.matching, meter);
        debug_assert!(self.matching.is_consistent());
        self.matching.len()
    }

    /// Extracts a maximum independent set of *nodes* (König's theorem)
    /// from the carried matching, as indices into the shared left/right
    /// vertex class: alternating-path reachability from the unmatched
    /// left vertices yields a minimum vertex cover, and the returned
    /// indices are exactly those with neither copy in the cover.
    ///
    /// For URSA's Dilworth setup (left and right classes are both copies
    /// of the same node set, edges are the comparability relation) the
    /// result is a maximum antichain of size `n − |M|` — **provided the
    /// matching is currently maximum** (call
    /// [`IncrementalMatcher::maximize`] first). On a sub-maximum matching
    /// the set may contain comparable pairs and its size overestimates
    /// the true width; callers that stopped `maximize_metered` early must
    /// treat it accordingly.
    pub fn konig_independent_set(&self) -> Vec<usize> {
        let k = self.adj.len();
        let m = &self.matching;
        let mut left_z = vec![false; k];
        let mut right_z = vec![false; self.n_right];
        let mut stack: Vec<usize> = (0..k).filter(|&l| m.left_to_right[l].is_none()).collect();
        for &l in &stack {
            left_z[l] = true;
        }
        while let Some(l) = stack.pop() {
            for &r in &self.adj[l] {
                if m.left_to_right[l] == Some(r) || right_z[r] {
                    continue;
                }
                right_z[r] = true;
                if let Some(l2) = m.right_to_left[r] {
                    if !left_z[l2] {
                        left_z[l2] = true;
                        stack.push(l2);
                    }
                }
            }
        }
        (0..k)
            .filter(|&i| left_z[i] && !right_z.get(i).copied().unwrap_or(false))
            .collect()
    }

    /// The matching accumulated so far.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// Consumes the matcher, returning the matching.
    pub fn into_matching(self) -> Matching {
        self.matching
    }
}

/// Runs the paper's staged matching: edges are grouped by ascending
/// `priority`, each group is inserted, and the matching is maximized
/// before the next group is admitted.
///
/// Lower priority values are preferred (priority 0 = edges that do not
/// cross a hammock boundary). The result is a maximum matching of the
/// whole edge set that maximizes use of lower-priority edges tier by tier.
///
/// # Examples
///
/// ```
/// use ursa_graph::matching::staged_matching;
///
/// // Edge (0,0) has priority 0, (1,0) priority 1: the tier-0 edge wins
/// // the shared right vertex and (1,0) stays unmatched.
/// let m = staged_matching(2, 1, &[(0, 0, 0), (1, 0, 1)]);
/// assert_eq!(m.left_to_right[0], Some(0));
/// assert_eq!(m.left_to_right[1], None);
/// ```
pub fn staged_matching(n_left: usize, n_right: usize, edges: &[(usize, usize, u32)]) -> Matching {
    staged_matching_metered(n_left, n_right, edges, &Unmetered)
}

/// [`staged_matching`] with a cooperative [`WorkMeter`]. All edges are
/// always admitted (insertion is cheap and keeps tier preference
/// deterministic); only the augmentation work between tiers is metered,
/// so on exhaustion the result is a valid but possibly sub-maximum
/// matching of the full edge set.
pub fn staged_matching_metered(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, u32)],
    meter: &dyn WorkMeter,
) -> Matching {
    // One stable sort instead of a rescan of all edges per tier: the
    // per-tier insertion order (and therefore the matching) is
    // identical, but the setup cost drops from O(tiers × edges) to
    // O(edges log edges).
    let mut order: Vec<u32> = (0..edges.len() as u32).collect();
    order.sort_by_key(|&i| edges[i as usize].2);
    let mut matcher = IncrementalMatcher::new(n_left, n_right);
    let mut idx = 0;
    while idx < order.len() {
        let tier = edges[order[idx] as usize].2;
        while idx < order.len() {
            let (l, r, p) = edges[order[idx] as usize];
            if p != tier {
                break;
            }
            // The caller's edge list enumerates distinct pairs.
            matcher.add_edge_unchecked(l, r);
            idx += 1;
        }
        matcher.maximize_metered(meter);
    }
    matcher.into_matching()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum matching by trying all subsets (tiny inputs).
    fn brute_force_max(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> usize {
        fn rec(edges: &[(usize, usize)], used_l: &mut Vec<bool>, used_r: &mut Vec<bool>) -> usize {
            if edges.is_empty() {
                return 0;
            }
            let (l, r) = edges[0];
            let skip = rec(&edges[1..], used_l, used_r);
            if !used_l[l] && !used_r[r] {
                used_l[l] = true;
                used_r[r] = true;
                let take = 1 + rec(&edges[1..], used_l, used_r);
                used_l[l] = false;
                used_r[r] = false;
                skip.max(take)
            } else {
                skip
            }
        }
        rec(edges, &mut vec![false; n_left], &mut vec![false; n_right])
    }

    fn to_adj(n_left: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n_left];
        for &(l, r) in edges {
            adj[l].push(r);
        }
        adj
    }

    #[test]
    fn perfect_matching_found() {
        let edges = [(0, 1), (1, 0), (2, 2)];
        let m = hopcroft_karp(3, 3, &to_adj(3, &edges));
        assert_eq!(m.len(), 3);
        assert!(m.is_consistent());
    }

    #[test]
    fn empty_graph_matches_nothing() {
        let m = hopcroft_karp(3, 3, &vec![Vec::new(); 3]);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn hopcroft_karp_agrees_with_brute_force() {
        // Deterministic pseudo-random small graphs.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..60 {
            let n_left = (next() % 5 + 1) as usize;
            let n_right = (next() % 5 + 1) as usize;
            let n_edges = (next() % 10) as usize;
            let mut edges = Vec::new();
            for _ in 0..n_edges {
                edges.push(((next() as usize) % n_left, (next() as usize) % n_right));
            }
            edges.sort_unstable();
            edges.dedup();
            let expect = brute_force_max(n_left, n_right, &edges);
            let got = hopcroft_karp(n_left, n_right, &to_adj(n_left, &edges)).len();
            assert_eq!(got, expect, "edges {edges:?}");
        }
    }

    #[test]
    fn incremental_matches_hopcroft_karp_cardinality() {
        let edges = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)];
        let mut inc = IncrementalMatcher::new(4, 4);
        for &(l, r) in &edges {
            inc.add_edge(l, r);
        }
        let hk = hopcroft_karp(4, 4, &to_adj(4, &edges));
        assert_eq!(inc.maximize(), hk.len());
    }

    #[test]
    fn incremental_addition_preserves_cardinality_growth() {
        let mut m = IncrementalMatcher::new(3, 3);
        m.add_edge(0, 0);
        m.add_edge(1, 0);
        assert_eq!(m.maximize(), 1);
        m.add_edge(1, 1);
        assert_eq!(m.maximize(), 2);
        m.add_edge(2, 2);
        assert_eq!(m.maximize(), 3);
    }

    #[test]
    fn staged_prefers_low_priority_tier() {
        // Both left vertices want right 0; the tier-0 edge is kept matched
        // to r0 even after tier 1 arrives with an alternative for l0.
        let m = staged_matching(2, 2, &[(0, 0, 0), (0, 1, 1), (1, 0, 1)]);
        assert_eq!(m.len(), 2);
        // Maximum cardinality requires l0-r1 OR l0-r0/l1 unmatched; the
        // staged algorithm re-routes l0 to r1 so l1 can use r0 — but only
        // because that keeps every tier-0 edge's cardinality intact.
        assert!(m.is_consistent());
    }

    #[test]
    fn staged_total_cardinality_is_maximum() {
        let edges = [(0usize, 0usize, 2u32), (0, 1, 0), (1, 1, 1), (2, 0, 1)];
        let m = staged_matching(3, 2, &edges);
        let plain: Vec<(usize, usize)> = edges.iter().map(|&(l, r, _)| (l, r)).collect();
        let expect = brute_force_max(3, 2, &plain);
        assert_eq!(m.len(), expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        IncrementalMatcher::new(1, 1).add_edge(0, 5);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut m = IncrementalMatcher::new(1, 1);
        assert!(m.add_edge(0, 0));
        assert!(!m.add_edge(0, 0));
        assert_eq!(m.maximize(), 1);
    }

    #[test]
    fn set_row_dissolves_lost_partner_and_returns_old_row() {
        let mut m = IncrementalMatcher::new(2, 2);
        m.add_edge(0, 0);
        m.add_edge(1, 1);
        assert_eq!(m.maximize(), 2);
        let old = m.set_row(0, vec![1]);
        assert_eq!(old, vec![0]);
        // 0 lost its partner; 1 keeps r1.
        assert_eq!(m.matching().left_to_right[0], None);
        assert_eq!(m.matching().right_to_left[0], None);
        assert_eq!(m.matching().left_to_right[1], Some(1));
        assert!(m.matching().is_consistent());
        // Maximizing re-routes: 0 takes r1, 1 is pushed nowhere (1's row
        // is still [1]) — cardinality over the new edge set is 1.
        assert_eq!(m.maximize(), 1);
    }

    #[test]
    fn truncate_row_reverts_appends_exactly() {
        let mut m = IncrementalMatcher::new(2, 3);
        m.add_edge(0, 0);
        m.add_edge(1, 1);
        m.maximize();
        let before_rows: Vec<Vec<usize>> = (0..2).map(|l| m.row(l).to_vec()).collect();
        let snapshot = m.matching().clone();
        let old_len = m.row(0).len();
        assert!(m.add_edge(0, 2));
        m.maximize();
        m.truncate_row(0, old_len);
        m.restore_matching(snapshot.clone());
        for (l, row) in before_rows.iter().enumerate() {
            assert_eq!(m.row(l), row.as_slice(), "row {l}");
        }
        assert_eq!(*m.matching(), snapshot);
        assert_eq!(m.maximize(), 2);
    }

    #[test]
    fn edit_revert_edit_revert_keeps_matcher_exact() {
        // Revert-after-revert: two independent probe rounds against the
        // same base must each restore the matcher bit-for-bit, and the
        // final cardinality must equal a from-scratch computation.
        let base_edges = [(0usize, 0usize), (1, 1), (2, 0), (2, 2)];
        let mut m = IncrementalMatcher::new(4, 4);
        for &(l, r) in &base_edges {
            m.add_edge(l, r);
        }
        m.maximize();
        let base_rows: Vec<Vec<usize>> = (0..4).map(|l| m.row(l).to_vec()).collect();
        let base_match = m.matching().clone();
        for probe_edges in [vec![(3usize, 3usize)], vec![(0, 3), (3, 1)]] {
            let snapshot = m.matching().clone();
            let mut journal: Vec<(usize, usize)> = Vec::new();
            for &(l, r) in &probe_edges {
                let old_len = m.row(l).len();
                if m.add_edge(l, r) {
                    journal.push((l, old_len));
                }
            }
            m.maximize();
            for &(l, old_len) in journal.iter().rev() {
                m.truncate_row(l, old_len);
            }
            m.restore_matching(snapshot);
            for (l, row) in base_rows.iter().enumerate() {
                assert_eq!(m.row(l), row.as_slice(), "row {l}");
            }
            assert_eq!(*m.matching(), base_match);
        }
        let hk = hopcroft_karp(4, 4, &to_adj(4, &base_edges));
        assert_eq!(m.maximize(), hk.len());
    }

    #[test]
    fn exhausted_meter_leaves_valid_submaximum_matching() {
        use crate::meter::FixedMeter;
        // A long alternating structure that needs several phases.
        let n = 12;
        let mut adj = vec![Vec::new(); n];
        for (l, row) in adj.iter_mut().enumerate() {
            for r in 0..n {
                if (l + r) % 3 != 1 {
                    row.push(r);
                }
            }
        }
        let full = hopcroft_karp(n, n, &adj);
        // Zero units: first phase never starts, matching stays empty.
        let starved = hopcroft_karp_metered(n, n, &adj, &FixedMeter::new(0));
        assert!(starved.is_consistent());
        assert_eq!(starved.len(), 0);
        // One phase's worth: valid, consistent, no larger than maximum.
        let partial = hopcroft_karp_metered(n, n, &adj, &FixedMeter::new(n as u64 + 1));
        assert!(partial.is_consistent());
        assert!(partial.len() <= full.len());
        // A generous meter reaches the true maximum.
        let done = hopcroft_karp_metered(n, n, &adj, &FixedMeter::new(1 << 20));
        assert_eq!(done.len(), full.len());
    }

    #[test]
    fn metered_maximize_never_decreases_cardinality() {
        use crate::meter::FixedMeter;
        let mut m = IncrementalMatcher::new(4, 4);
        for (l, r) in [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2), (3, 3)] {
            m.add_edge(l, r);
        }
        let full = m.clone().maximize();
        let mut last = 0;
        for units in 0..20 {
            let mut trial = m.clone();
            let got = trial.maximize_metered(&FixedMeter::new(units));
            assert!(trial.matching().is_consistent());
            assert!(got >= last, "more budget can only help");
            assert!(got <= full);
            last = got;
        }
        assert_eq!(last, full);
    }

    #[test]
    fn konig_independent_set_witnesses_dilworth() {
        // Comparability of the order 0 < 1 < 2 with 3 incomparable:
        // width 2, so the independent set has n - |M| = 2 members.
        let mut m = IncrementalMatcher::new(4, 4);
        m.add_edge(0, 1);
        m.add_edge(0, 2);
        m.add_edge(1, 2);
        m.maximize();
        let set = m.konig_independent_set();
        assert_eq!(set.len(), 4 - m.matching().len());
        assert_eq!(set.len(), 2);
        // Members must be pairwise incomparable: 3 plus one of {0,1,2}.
        assert!(set.contains(&3));
    }

    #[test]
    fn unmatch_left_frees_both_sides() {
        let mut m = IncrementalMatcher::new(2, 2);
        m.add_edge(0, 0);
        m.add_edge(1, 0);
        assert_eq!(m.maximize(), 1);
        m.unmatch_left(0);
        m.unmatch_left(0); // idempotent
        assert!(m.matching().is_empty());
        assert!(m.matching().is_consistent());
        assert_eq!(m.maximize(), 1);
    }

    #[test]
    fn set_row_then_maximize_matches_scratch() {
        // Replace rows repeatedly (the engine does this when a producer's
        // killer changes) and check cardinality against Hopcroft–Karp on
        // the final edge set.
        let mut m = IncrementalMatcher::new(3, 3);
        m.add_edge(0, 0);
        m.add_edge(1, 0);
        m.add_edge(2, 2);
        m.maximize();
        m.set_row(0, vec![1, 2]);
        m.set_row(1, vec![0, 1]);
        m.maximize();
        let adj = vec![vec![1, 2], vec![0, 1], vec![2]];
        let hk = hopcroft_karp(3, 3, &adj);
        assert_eq!(m.matching().len(), hk.len());
        assert!(m.matching().is_consistent());
    }
}
