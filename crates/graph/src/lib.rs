//! Graph substrate for the URSA reproduction.
//!
//! Everything URSA does happens on a dependence DAG and its derived
//! structures. This crate holds the program-agnostic machinery:
//!
//! * [`bitset`] — dense bit sets and bit matrices.
//! * [`dag`] — DAGs with typed edges (data / memory / control / sequence).
//! * [`reach`] — materialized transitive closure with incremental update.
//! * [`order`] — ASAP/ALAP levels and critical-path length.
//! * [`matching`] — maximum bipartite matching (Hopcroft–Karp and the
//!   paper's staged, priority-tiered Kuhn variant).
//! * [`chains`] — minimum chain decomposition via Dilworth's theorem.
//! * [`meter`] — cooperative work metering for cancellable algorithms.
//! * [`hammock`] — dominators, postdominators, and single-entry /
//!   single-exit (hammock) region structure with nesting levels.
//!
//! # Examples
//!
//! Measuring the width (maximum parallelism) of a small DAG:
//!
//! ```
//! use ursa_graph::chains::decompose;
//! use ursa_graph::dag::{Dag, EdgeKind, NodeId};
//! use ursa_graph::reach::Reachability;
//!
//! let mut g = Dag::new(4);
//! g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
//! g.add_edge(NodeId(0), NodeId(2), EdgeKind::Data);
//! g.add_edge(NodeId(1), NodeId(3), EdgeKind::Data);
//! g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
//! let reach = Reachability::of(&g);
//! let nodes: Vec<NodeId> = g.nodes().collect();
//! let decomposition = decompose(&nodes, |a, b| reach.reaches(a, b));
//! assert_eq!(decomposition.num_chains(), 2); // the two diamond arms
//! ```

pub mod bitset;
pub mod chains;
pub mod dag;
pub mod hammock;
pub mod matching;
pub mod meter;
pub mod order;
pub mod reach;

pub use bitset::{BitMatrix, BitSet};
pub use chains::ChainDecomposition;
pub use dag::{Dag, Edge, EdgeKind, NodeId};
pub use hammock::HammockAnalysis;
pub use matching::Matching;
pub use meter::{Unmetered, WorkMeter};
pub use order::Levels;
pub use reach::Reachability;
