//! Directed acyclic graphs with typed edges.
//!
//! URSA's program representation is a dependence DAG whose edges come in
//! two families (paper §2): *dependence* edges that preserve semantic
//! correctness (data, memory, control ordering from the trace scheduler)
//! and *sequence* edges added by URSA itself to remove schedules with
//! excessive resource requirements. [`Dag`] keeps the distinction so
//! transformations can be audited and undone.

use crate::bitset::BitSet;
use std::fmt;

/// Identifier of a node in a [`Dag`]; a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's dense index, for direct array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index fits in u32"))
    }
}

/// The provenance of a DAG edge (paper §2 / §3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// Flow of a value from a definition to a use.
    Data,
    /// Ordering between memory operations that may alias.
    Memory,
    /// Sequencing that precludes illegal motion of code across branches
    /// (added by the trace scheduler).
    Control,
    /// Anti/output dependence from register reuse. URSA's renamed DAGs
    /// never contain these; they appear only when a prepass register
    /// allocator has already mapped values onto a finite register file
    /// (the phase ordering the paper argues against, §1).
    Anti,
    /// Sequentialization added by URSA's reduction transformations.
    Sequence,
}

impl EdgeKind {
    /// `true` for the edge kinds that encode program semantics rather
    /// than URSA's own sequentialization decisions.
    pub fn is_semantic(self) -> bool {
        !matches!(self, EdgeKind::Sequence)
    }
}

/// A directed edge with its provenance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Provenance of the edge.
    pub kind: EdgeKind,
}

/// A growable directed acyclic graph with typed edges.
///
/// Acyclicity is the caller's responsibility on insertion (checked in
/// debug builds and by [`Dag::is_acyclic`]); URSA's transformations use
/// reachability information to refuse cycle-creating sequence edges.
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind};
///
/// let mut g = Dag::new(3);
/// let (a, b, c) = (g.node(0), g.node(1), g.node(2));
/// g.add_edge(a, b, EdgeKind::Data);
/// g.add_edge(b, c, EdgeKind::Data);
/// assert!(g.is_acyclic());
/// assert_eq!(g.succs(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Clone, Default)]
pub struct Dag {
    succs: Vec<Vec<(NodeId, EdgeKind)>>,
    preds: Vec<Vec<(NodeId, EdgeKind)>>,
    edge_count: usize,
    /// XOR of [`edge_hash`] over every present edge (plus a node-count
    /// term). Because XOR is self-inverse, add/remove of the same edge
    /// round-trips the fingerprint exactly — a tentative edit that is
    /// reverted leaves the fingerprint, and thus any cache keyed on it,
    /// untouched.
    fingerprint: u64,
}

/// splitmix64-style mix of an edge triple into a 64-bit contribution.
fn edge_hash(from: NodeId, to: NodeId, kind: EdgeKind) -> u64 {
    let mut z = (u64::from(from.0) << 35) ^ (u64::from(to.0) << 3) ^ (kind as u64);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Dag {
    /// Creates a DAG with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Dag {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            edge_count: 0,
            fingerprint: (n as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        }
    }

    /// A structural fingerprint of the graph: a commutative hash over
    /// the node count and every `(from, to, kind)` edge. Two graphs with
    /// the same fingerprint are (with overwhelming probability) the same
    /// graph, so caches of structure-derived analyses — hammock
    /// decompositions in particular — can key on it. Adding then
    /// removing an edge restores the fingerprint exactly.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges (parallel edges of different kinds count once each).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns the [`NodeId`] for dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a node of this graph.
    pub fn node(&self, i: usize) -> NodeId {
        assert!(
            i < self.node_count(),
            "node {i} out of range {}",
            self.node_count()
        );
        NodeId::from(i)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from)
    }

    /// Appends a fresh node with no edges and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let old = self.node_count() as u64;
        self.fingerprint ^=
            old.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ (old + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        NodeId::from(self.node_count() - 1)
    }

    /// Adds an edge `from → to` of the given kind. Duplicate
    /// `(from, to, kind)` triples are ignored; the same node pair may be
    /// connected by edges of several kinds. Returns `true` if the edge was
    /// newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `from == to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        assert!(from.index() < self.node_count() && to.index() < self.node_count());
        assert_ne!(from, to, "self-loop {from} would create a cycle");
        if self.succs[from.index()].contains(&(to, kind)) {
            return false;
        }
        self.succs[from.index()].push((to, kind));
        self.preds[to.index()].push((from, kind));
        self.edge_count += 1;
        self.fingerprint ^= edge_hash(from, to, kind);
        true
    }

    /// Removes the edge `(from, to, kind)` if present; returns whether it
    /// was removed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        let s = &mut self.succs[from.index()];
        let Some(pos) = s.iter().position(|&e| e == (to, kind)) else {
            return false;
        };
        s.swap_remove(pos);
        let p = &mut self.preds[to.index()];
        let pos = p
            .iter()
            .position(|&e| e == (from, kind))
            .expect("pred list mirrors succ list");
        p.swap_remove(pos);
        self.edge_count -= 1;
        self.fingerprint ^= edge_hash(from, to, kind);
        true
    }

    /// `true` if any edge `from → to` exists, of any kind.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from.index()].iter().any(|&(t, _)| t == to)
    }

    /// `true` if an edge `from → to` of the given kind exists.
    pub fn has_edge_kind(&self, from: NodeId, to: NodeId, kind: EdgeKind) -> bool {
        self.succs[from.index()].contains(&(to, kind))
    }

    /// Iterates over the distinct successor nodes of `v` (a node connected
    /// by several edge kinds appears once per kind; use
    /// [`Dag::succ_edges`] to see kinds).
    pub fn succs(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[v.index()].iter().map(|&(t, _)| t)
    }

    /// Iterates over the distinct predecessor nodes of `v`.
    pub fn preds(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[v.index()].iter().map(|&(t, _)| t)
    }

    /// Iterates over outgoing edges of `v` with kinds.
    pub fn succ_edges(&self, v: NodeId) -> impl Iterator<Item = Edge> + '_ {
        self.succs[v.index()]
            .iter()
            .map(move |&(to, kind)| Edge { from: v, to, kind })
    }

    /// Iterates over incoming edges of `v` with kinds.
    pub fn pred_edges(&self, v: NodeId) -> impl Iterator<Item = Edge> + '_ {
        self.preds[v.index()]
            .iter()
            .map(move |&(from, kind)| Edge { from, to: v, kind })
    }

    /// Iterates over every edge of the graph.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |v| self.succ_edges(v))
    }

    /// In-degree of `v` counting parallel kinds separately.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.preds[v.index()].len()
    }

    /// Out-degree of `v` counting parallel kinds separately.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.succs[v.index()].len()
    }

    /// Nodes with no predecessors.
    pub fn roots(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// Nodes with no successors.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Computes a topological order, or `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n)
            .map(|i| self.distinct_pred_count(NodeId::from(i)))
            .collect();
        let mut queue: Vec<NodeId> = (0..n)
            .map(NodeId::from)
            .filter(|v| indeg[v.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            let mut seen = BitSet::new(n);
            for s in self.succs(v) {
                if seen.insert(s.index()) {
                    indeg[s.index()] -= 1;
                    if indeg[s.index()] == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    fn distinct_pred_count(&self, v: NodeId) -> usize {
        let mut seen = BitSet::new(self.node_count());
        self.preds(v).filter(|p| seen.insert(p.index())).count()
    }

    /// `true` if the graph contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// Depth-first collection of every node reachable from `start`
    /// (excluding `start` itself).
    pub fn descendants(&self, start: NodeId) -> BitSet {
        let mut out = BitSet::new(self.node_count());
        let mut stack: Vec<NodeId> = self.succs(start).collect();
        while let Some(v) = stack.pop() {
            if out.insert(v.index()) {
                stack.extend(self.succs(v));
            }
        }
        out
    }

    /// Depth-first collection of every node that reaches `start`
    /// (excluding `start` itself).
    pub fn ancestors(&self, start: NodeId) -> BitSet {
        let mut out = BitSet::new(self.node_count());
        let mut stack: Vec<NodeId> = self.preds(start).collect();
        while let Some(v) = stack.pop() {
            if out.insert(v.index()) {
                stack.extend(self.preds(v));
            }
        }
        out
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dag({} nodes, {} edges)",
            self.node_count(),
            self.edge_count()
        )?;
        for v in self.nodes() {
            for e in self.succ_edges(v) {
                writeln!(f, "  {} -> {} [{:?}]", e.from, e.to, e.kind)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = Dag::new(4);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(0), NodeId(2), EdgeKind::Data);
        g.add_edge(NodeId(1), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        g
    }

    #[test]
    fn add_edge_dedupes_same_kind() {
        let mut g = Dag::new(2);
        assert!(g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data));
        assert!(!g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data));
        assert!(g.add_edge(NodeId(0), NodeId(1), EdgeKind::Sequence));
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge_kind(NodeId(0), NodeId(1), EdgeKind::Sequence));
    }

    #[test]
    fn remove_edge_respects_kind() {
        let mut g = Dag::new(2);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Sequence);
        assert!(g.remove_edge(NodeId(0), NodeId(1), EdgeKind::Sequence));
        assert!(!g.remove_edge(NodeId(0), NodeId(1), EdgeKind::Sequence));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        Dag::new(1).add_edge(NodeId(0), NodeId(0), EdgeKind::Data);
    }

    #[test]
    fn topo_order_of_diamond() {
        let g = diamond();
        let order = g.topo_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, v) in order.iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dag::new(3);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(1), NodeId(2), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(0), EdgeKind::Sequence);
        assert!(!g.is_acyclic());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn topo_order_with_parallel_edge_kinds() {
        let mut g = Dag::new(2);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Memory);
        let order = g.topo_order().expect("acyclic");
        assert_eq!(order, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn roots_and_leaves() {
        let g = diamond();
        assert_eq!(g.roots(), vec![NodeId(0)]);
        assert_eq!(g.leaves(), vec![NodeId(3)]);
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = diamond();
        let d = g.descendants(NodeId(0));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        let a = g.ancestors(NodeId(3));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(g.descendants(NodeId(3)).is_empty());
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = diamond();
        let v = g.add_node();
        assert_eq!(v, NodeId(4));
        assert_eq!(g.node_count(), 5);
        g.add_edge(NodeId(3), v, EdgeKind::Sequence);
        assert!(g.is_acyclic());
    }

    #[test]
    fn edges_iterator_sees_everything() {
        let g = diamond();
        assert_eq!(g.edges().count(), 4);
        assert!(g.edges().all(|e| e.kind == EdgeKind::Data));
    }

    #[test]
    fn fingerprint_round_trips_under_add_remove() {
        let mut g = diamond();
        let fp = g.fingerprint();
        g.add_edge(NodeId(1), NodeId(2), EdgeKind::Sequence);
        assert_ne!(g.fingerprint(), fp, "adding an edge moves the print");
        g.remove_edge(NodeId(1), NodeId(2), EdgeKind::Sequence);
        assert_eq!(g.fingerprint(), fp, "removing it restores the print");
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let mut a = Dag::new(3);
        a.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        a.add_edge(NodeId(1), NodeId(2), EdgeKind::Sequence);
        let mut b = Dag::new(3);
        b.add_edge(NodeId(1), NodeId(2), EdgeKind::Sequence);
        b.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_kind_and_shape() {
        let mut a = Dag::new(2);
        a.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        let mut b = Dag::new(2);
        b.add_edge(NodeId(0), NodeId(1), EdgeKind::Sequence);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(Dag::new(2).fingerprint(), Dag::new(3).fingerprint());
        let mut c = Dag::new(3);
        let fp2 = Dag::new(2).fingerprint();
        assert_ne!(c.fingerprint(), fp2);
        c.add_node();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.fingerprint(), Dag::new(4).fingerprint());
    }
}
