//! Reachability (transitive closure) over a DAG.
//!
//! URSA's partial order ≤ is the reachability relation of the trace DAG
//! (paper §3): two nodes are *independent* — may execute in parallel —
//! exactly when neither reaches the other. Measurement, excessive chain
//! set trimming, and every transformation all query this relation, so we
//! materialize it as a pair of bit matrices (descendants and ancestors)
//! and update it incrementally when sequence edges are added.

use crate::bitset::{BitMatrix, BitSet};
use crate::dag::{Dag, NodeId};

/// Materialized transitive closure of a [`Dag`].
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind, NodeId};
/// use ursa_graph::reach::Reachability;
///
/// let mut g = Dag::new(3);
/// g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
/// g.add_edge(NodeId(1), NodeId(2), EdgeKind::Data);
/// let r = Reachability::of(&g);
/// assert!(r.reaches(NodeId(0), NodeId(2)));
/// assert!(!r.reaches(NodeId(2), NodeId(0)));
/// assert!(!r.independent(NodeId(0), NodeId(2)));
/// ```
#[derive(Clone)]
pub struct Reachability {
    /// `desc.get(a, b)` ⇔ there is a nonempty path a → b.
    desc: BitMatrix,
    /// `anc.get(b, a)` ⇔ there is a nonempty path a → b (transpose of `desc`).
    anc: BitMatrix,
}

impl Reachability {
    /// Computes the closure of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a cycle.
    pub fn of(g: &Dag) -> Self {
        let n = g.node_count();
        let order = g
            .topo_order()
            .expect("reachability requires an acyclic graph");
        let mut desc = BitMatrix::new(n);
        // Reverse topological order: successors are finished first.
        for &v in order.iter().rev() {
            // Collect successor indices first to avoid borrowing issues.
            let succs: Vec<usize> = g.succs(v).map(NodeId::index).collect();
            for s in succs {
                desc.set(v.index(), s);
                desc.or_row_into(s, v.index());
            }
        }
        let mut anc = BitMatrix::new(n);
        for i in 0..n {
            for j in desc.row_iter(i) {
                anc.set(j, i);
            }
        }
        Reachability { desc, anc }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.desc.len()
    }

    /// `true` for a zero-node graph.
    pub fn is_empty(&self) -> bool {
        self.desc.is_empty()
    }

    /// `true` if there is a nonempty path `a → b`.
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        self.desc.get(a.index(), b.index())
    }

    /// `true` if the nodes are unrelated in the partial order — i.e. they
    /// may execute concurrently (paper §3, after Definition 2).
    pub fn independent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }

    /// The strict descendants of `v` as a [`BitSet`] of node indices.
    pub fn descendants(&self, v: NodeId) -> BitSet {
        self.desc.row_bitset(v.index())
    }

    /// The strict ancestors of `v` as a [`BitSet`] of node indices.
    pub fn ancestors(&self, v: NodeId) -> BitSet {
        self.anc.row_bitset(v.index())
    }

    /// Iterates over the strict descendants of `v`.
    pub fn descendants_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.desc.row_iter(v.index()).map(NodeId::from)
    }

    /// Iterates over the strict ancestors of `v`.
    pub fn ancestors_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.anc.row_iter(v.index()).map(NodeId::from)
    }

    /// Number of strict descendants of `v`.
    pub fn descendant_count(&self, v: NodeId) -> usize {
        self.desc.row_len(v.index())
    }

    /// `true` if adding the edge `a → b` would create a cycle (i.e. `b`
    /// already reaches `a`, or `a == b`).
    pub fn would_cycle(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.reaches(b, a)
    }

    /// Incrementally accounts for a newly inserted edge `a → b`.
    ///
    /// Every ancestor of `a` (and `a` itself) gains `b` and `b`'s
    /// descendants; the transpose is updated symmetrically.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle (call
    /// [`Reachability::would_cycle`] first).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            !self.would_cycle(a, b),
            "edge {a} -> {b} would create a cycle"
        );
        if self.reaches(a, b) {
            // Already implied; nothing changes.
            return;
        }
        let gained: Vec<usize> = std::iter::once(b.index())
            .chain(self.desc.row_iter(b.index()))
            .collect();
        let sources: Vec<usize> = std::iter::once(a.index())
            .chain(self.anc.row_iter(a.index()))
            .collect();
        for &s in &sources {
            for &d in &gained {
                if s != d {
                    self.desc.set(s, d);
                    self.anc.set(d, s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeKind;

    fn chain(n: usize) -> Dag {
        let mut g = Dag::new(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::from(i), NodeId::from(i + 1), EdgeKind::Data);
        }
        g
    }

    #[test]
    fn chain_closure_is_total_order() {
        let g = chain(5);
        let r = Reachability::of(&g);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(r.reaches(NodeId(i), NodeId(j)), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn independence_of_diamond_arms() {
        let mut g = Dag::new(4);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(0), NodeId(2), EdgeKind::Data);
        g.add_edge(NodeId(1), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        let r = Reachability::of(&g);
        assert!(r.independent(NodeId(1), NodeId(2)));
        assert!(!r.independent(NodeId(0), NodeId(1)));
        assert!(
            !r.independent(NodeId(1), NodeId(1)),
            "a node is related to itself"
        );
    }

    #[test]
    fn ancestors_are_transpose_of_descendants() {
        let g = chain(4);
        let r = Reachability::of(&g);
        assert_eq!(
            r.descendants(NodeId(1)).iter().collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(r.ancestors(NodeId(1)).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(r.descendant_count(NodeId(0)), 3);
    }

    #[test]
    fn incremental_add_edge_matches_recompute() {
        let mut g = Dag::new(6);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(4), NodeId(5), EdgeKind::Data);
        let mut r = Reachability::of(&g);

        g.add_edge(NodeId(1), NodeId(2), EdgeKind::Sequence);
        r.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4), EdgeKind::Sequence);
        r.add_edge(NodeId(3), NodeId(4));

        let fresh = Reachability::of(&g);
        for i in 0..6u32 {
            for j in 0..6u32 {
                assert_eq!(
                    r.reaches(NodeId(i), NodeId(j)),
                    fresh.reaches(NodeId(i), NodeId(j)),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn add_implied_edge_is_noop() {
        let g = chain(3);
        let mut r = Reachability::of(&g);
        r.add_edge(NodeId(0), NodeId(2));
        assert!(r.reaches(NodeId(0), NodeId(2)));
        assert!(!r.reaches(NodeId(2), NodeId(0)));
    }

    #[test]
    fn would_cycle_detects_back_edge() {
        let g = chain(3);
        let r = Reachability::of(&g);
        assert!(r.would_cycle(NodeId(2), NodeId(0)));
        assert!(r.would_cycle(NodeId(1), NodeId(1)));
        assert!(!r.would_cycle(NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "would create a cycle")]
    fn add_cycle_edge_panics() {
        let g = chain(2);
        let mut r = Reachability::of(&g);
        r.add_edge(NodeId(1), NodeId(0));
    }
}
