//! Reachability (transitive closure) over a DAG.
//!
//! URSA's partial order ≤ is the reachability relation of the trace DAG
//! (paper §3): two nodes are *independent* — may execute in parallel —
//! exactly when neither reaches the other. Measurement, excessive chain
//! set trimming, and every transformation all query this relation, so we
//! materialize it as a pair of bit matrices (descendants and ancestors)
//! and update it incrementally when sequence edges are added.

use crate::bitset::{BitMatrix, BitSet};
use crate::dag::{Dag, NodeId};

/// The exact set of `(src, dst)` reachability pairs that one edge
/// insertion newly established, as recorded by
/// [`Reachability::add_edge_logged`].
///
/// Because [`Reachability::add_edge`] is monotone — it only ever *sets*
/// bits, and only bits that were clear before — unsetting precisely the
/// recorded pairs restores the closure bit-for-bit. That makes a
/// sequence of tentative edge insertions revertible in LIFO order
/// without recomputing anything.
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind, NodeId};
/// use ursa_graph::reach::Reachability;
///
/// let mut g = Dag::new(3);
/// g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
/// let mut r = Reachability::of(&g);
/// let delta = r.add_edge_logged(NodeId(1), NodeId(2));
/// assert!(r.reaches(NodeId(0), NodeId(2)));
/// r.undo(&delta);
/// assert!(!r.reaches(NodeId(0), NodeId(2)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReachDelta {
    /// Pairs `(src, dst)` that became reachable by this insertion.
    pairs: Vec<(usize, usize)>,
}

impl ReachDelta {
    /// Number of newly established pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the inserted edge was already implied and nothing
    /// changed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the newly established `(src, dst)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pairs
            .iter()
            .map(|&(s, d)| (NodeId::from(s), NodeId::from(d)))
    }
}

/// Materialized transitive closure of a [`Dag`].
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind, NodeId};
/// use ursa_graph::reach::Reachability;
///
/// let mut g = Dag::new(3);
/// g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
/// g.add_edge(NodeId(1), NodeId(2), EdgeKind::Data);
/// let r = Reachability::of(&g);
/// assert!(r.reaches(NodeId(0), NodeId(2)));
/// assert!(!r.reaches(NodeId(2), NodeId(0)));
/// assert!(!r.independent(NodeId(0), NodeId(2)));
/// ```
#[derive(Clone)]
pub struct Reachability {
    /// `desc.get(a, b)` ⇔ there is a nonempty path a → b.
    desc: BitMatrix,
    /// `anc.get(b, a)` ⇔ there is a nonempty path a → b (transpose of `desc`).
    anc: BitMatrix,
}

impl Reachability {
    /// Computes the closure of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a cycle.
    pub fn of(g: &Dag) -> Self {
        let n = g.node_count();
        let order = g
            .topo_order()
            .expect("reachability requires an acyclic graph");
        let mut desc = BitMatrix::new(n);
        // Reverse topological order: successors are finished first.
        for &v in order.iter().rev() {
            // Collect successor indices first to avoid borrowing issues.
            let succs: Vec<usize> = g.succs(v).map(NodeId::index).collect();
            for s in succs {
                desc.set(v.index(), s);
                desc.or_row_into(s, v.index());
            }
        }
        let mut anc = BitMatrix::new(n);
        for i in 0..n {
            for j in desc.row_iter(i) {
                anc.set(j, i);
            }
        }
        Reachability { desc, anc }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.desc.len()
    }

    /// `true` for a zero-node graph.
    pub fn is_empty(&self) -> bool {
        self.desc.is_empty()
    }

    /// `true` if there is a nonempty path `a → b`.
    pub fn reaches(&self, a: NodeId, b: NodeId) -> bool {
        self.desc.get(a.index(), b.index())
    }

    /// `true` if the nodes are unrelated in the partial order — i.e. they
    /// may execute concurrently (paper §3, after Definition 2).
    pub fn independent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }

    /// The strict descendants of `v` as a [`BitSet`] of node indices.
    pub fn descendants(&self, v: NodeId) -> BitSet {
        self.desc.row_bitset(v.index())
    }

    /// The strict ancestors of `v` as a [`BitSet`] of node indices.
    pub fn ancestors(&self, v: NodeId) -> BitSet {
        self.anc.row_bitset(v.index())
    }

    /// Iterates over the strict descendants of `v`.
    pub fn descendants_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.desc.row_iter(v.index()).map(NodeId::from)
    }

    /// Iterates over the strict ancestors of `v`.
    pub fn ancestors_iter(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.anc.row_iter(v.index()).map(NodeId::from)
    }

    /// Number of strict descendants of `v`.
    pub fn descendant_count(&self, v: NodeId) -> usize {
        self.desc.row_len(v.index())
    }

    /// `true` if adding the edge `a → b` would create a cycle (i.e. `b`
    /// already reaches `a`, or `a == b`).
    pub fn would_cycle(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.reaches(b, a)
    }

    /// Incrementally accounts for a newly inserted edge `a → b`.
    ///
    /// Every ancestor of `a` (and `a` itself) gains `b` and `b`'s
    /// descendants; the transpose is updated symmetrically.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle (call
    /// [`Reachability::would_cycle`] first).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        self.add_edge_logged(a, b);
    }

    /// Like [`Reachability::add_edge`], but returns the exact set of
    /// pairs that became reachable, so the insertion can be reverted
    /// with [`Reachability::undo`].
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle.
    pub fn add_edge_logged(&mut self, a: NodeId, b: NodeId) -> ReachDelta {
        assert!(
            !self.would_cycle(a, b),
            "edge {a} -> {b} would create a cycle"
        );
        let mut delta = ReachDelta::default();
        if self.reaches(a, b) {
            // Already implied; nothing changes.
            return delta;
        }
        let gained: Vec<usize> = std::iter::once(b.index())
            .chain(self.desc.row_iter(b.index()))
            .collect();
        let sources: Vec<usize> = std::iter::once(a.index())
            .chain(self.anc.row_iter(a.index()))
            .collect();
        for &s in &sources {
            for &d in &gained {
                if s != d && !self.desc.get(s, d) {
                    self.desc.set(s, d);
                    self.anc.set(d, s);
                    delta.pairs.push((s, d));
                }
            }
        }
        delta
    }

    /// Reverts a delta produced by [`Reachability::add_edge_logged`].
    ///
    /// Deltas must be undone in LIFO order with respect to the
    /// insertions that produced them; each delta records only pairs that
    /// were newly set at its own insertion time, so out-of-order undo
    /// could clear a pair a later insertion still relies on.
    pub fn undo(&mut self, delta: &ReachDelta) {
        for &(s, d) in &delta.pairs {
            self.desc.unset(s, d);
            self.anc.unset(d, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeKind;

    fn chain(n: usize) -> Dag {
        let mut g = Dag::new(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::from(i), NodeId::from(i + 1), EdgeKind::Data);
        }
        g
    }

    #[test]
    fn chain_closure_is_total_order() {
        let g = chain(5);
        let r = Reachability::of(&g);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(r.reaches(NodeId(i), NodeId(j)), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn independence_of_diamond_arms() {
        let mut g = Dag::new(4);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(0), NodeId(2), EdgeKind::Data);
        g.add_edge(NodeId(1), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        let r = Reachability::of(&g);
        assert!(r.independent(NodeId(1), NodeId(2)));
        assert!(!r.independent(NodeId(0), NodeId(1)));
        assert!(
            !r.independent(NodeId(1), NodeId(1)),
            "a node is related to itself"
        );
    }

    #[test]
    fn ancestors_are_transpose_of_descendants() {
        let g = chain(4);
        let r = Reachability::of(&g);
        assert_eq!(
            r.descendants(NodeId(1)).iter().collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(r.ancestors(NodeId(1)).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(r.descendant_count(NodeId(0)), 3);
    }

    #[test]
    fn incremental_add_edge_matches_recompute() {
        let mut g = Dag::new(6);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(4), NodeId(5), EdgeKind::Data);
        let mut r = Reachability::of(&g);

        g.add_edge(NodeId(1), NodeId(2), EdgeKind::Sequence);
        r.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4), EdgeKind::Sequence);
        r.add_edge(NodeId(3), NodeId(4));

        let fresh = Reachability::of(&g);
        for i in 0..6u32 {
            for j in 0..6u32 {
                assert_eq!(
                    r.reaches(NodeId(i), NodeId(j)),
                    fresh.reaches(NodeId(i), NodeId(j)),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn add_implied_edge_is_noop() {
        let g = chain(3);
        let mut r = Reachability::of(&g);
        r.add_edge(NodeId(0), NodeId(2));
        assert!(r.reaches(NodeId(0), NodeId(2)));
        assert!(!r.reaches(NodeId(2), NodeId(0)));
    }

    #[test]
    fn would_cycle_detects_back_edge() {
        let g = chain(3);
        let r = Reachability::of(&g);
        assert!(r.would_cycle(NodeId(2), NodeId(0)));
        assert!(r.would_cycle(NodeId(1), NodeId(1)));
        assert!(!r.would_cycle(NodeId(0), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "would create a cycle")]
    fn add_cycle_edge_panics() {
        let g = chain(2);
        let mut r = Reachability::of(&g);
        r.add_edge(NodeId(1), NodeId(0));
    }

    fn assert_same(a: &Reachability, b: &Reachability, what: &str) {
        let n = a.len() as u32;
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    a.reaches(NodeId(i), NodeId(j)),
                    b.reaches(NodeId(i), NodeId(j)),
                    "{what}: desc ({i},{j})"
                );
                assert_eq!(
                    a.ancestors(NodeId(i)).contains(j as usize),
                    b.ancestors(NodeId(i)).contains(j as usize),
                    "{what}: anc ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn logged_add_then_undo_restores_closure_exactly() {
        let mut g = Dag::new(6);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(4), NodeId(5), EdgeKind::Data);
        let before = Reachability::of(&g);
        let mut r = before.clone();
        let delta = r.add_edge_logged(NodeId(1), NodeId(2));
        assert!(!delta.is_empty());
        assert!(r.reaches(NodeId(0), NodeId(3)));
        r.undo(&delta);
        assert_same(&r, &before, "after undo");
    }

    #[test]
    fn lifo_undo_of_stacked_deltas() {
        let mut g = Dag::new(8);
        for i in (0..8).step_by(2) {
            g.add_edge(NodeId::from(i), NodeId::from(i + 1), EdgeKind::Data);
        }
        let base = Reachability::of(&g);
        let mut r = base.clone();
        let d1 = r.add_edge_logged(NodeId(1), NodeId(2));
        let mid = r.clone();
        let d2 = r.add_edge_logged(NodeId(3), NodeId(4));
        let d3 = r.add_edge_logged(NodeId(5), NodeId(6));
        assert!(r.reaches(NodeId(0), NodeId(7)));
        r.undo(&d3);
        r.undo(&d2);
        assert_same(&r, &mid, "after undoing d3, d2");
        r.undo(&d1);
        assert_same(&r, &base, "after undoing everything");
    }

    #[test]
    fn revert_after_revert_and_reapply() {
        // Undo, re-apply the same edge, undo again: the closure must land
        // back at base both times (the engine's probe/rollback loop does
        // exactly this with different candidates between rounds).
        let mut g = Dag::new(4);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        let base = Reachability::of(&g);
        let mut r = base.clone();
        for _ in 0..3 {
            let d = r.add_edge_logged(NodeId(1), NodeId(2));
            assert!(r.reaches(NodeId(0), NodeId(3)));
            r.undo(&d);
            assert_same(&r, &base, "round-trip");
        }
    }

    #[test]
    fn implied_edge_delta_is_empty_and_undo_is_noop() {
        let g = chain(3);
        let mut r = Reachability::of(&g);
        let snapshot = r.clone();
        let d = r.add_edge_logged(NodeId(0), NodeId(2));
        assert!(d.is_empty());
        r.undo(&d);
        assert_same(&r, &snapshot, "implied edge");
    }

    #[test]
    fn delta_pairs_enumerate_new_reachability() {
        let mut g = Dag::new(4);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        let mut r = Reachability::of(&g);
        let d = r.add_edge_logged(NodeId(1), NodeId(2));
        let mut pairs: Vec<(u32, u32)> = d.pairs().map(|(a, b)| (a.0, b.0)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 2), (0, 3), (1, 2), (1, 3)]);
    }
}
