//! Dominators, postdominators and hammock (single-entry/single-exit
//! region) analysis.
//!
//! URSA localizes excessive resource requirements to *hammocks* (paper
//! §3.1): regions with a unique entry and exit such that no instruction
//! outside the region matters when transforming it. Because the trace DAG
//! is given a synthetic single root and leaf, the whole DAG is itself a
//! hammock, and nested hammocks form a hierarchy. The paper's modified
//! matching algorithm prioritizes bipartite edges by the difference in
//! hammock nesting level between their endpoints so the chain
//! decomposition is minimal for *every* nested hammock, not only the
//! outermost one.

use crate::bitset::{BitMatrix, BitSet};
use crate::dag::{Dag, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from [`HammockAnalysis::analyze`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalyzeHammockError {
    /// The graph does not have exactly one root (entry) node.
    RootNotUnique(usize),
    /// The graph does not have exactly one leaf (exit) node.
    LeafNotUnique(usize),
    /// The graph contains a cycle.
    Cyclic,
}

impl fmt::Display for AnalyzeHammockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeHammockError::RootNotUnique(n) => {
                write!(f, "hammock analysis requires exactly one root, found {n}")
            }
            AnalyzeHammockError::LeafNotUnique(n) => {
                write!(f, "hammock analysis requires exactly one leaf, found {n}")
            }
            AnalyzeHammockError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for AnalyzeHammockError {}

/// Immediate-dominator computation (Cooper–Harvey–Kennedy iterative
/// scheme) for a rooted DAG. Returns `idom[v]`, with `idom[root] = root`.
/// Unreachable nodes get `None`.
pub fn immediate_dominators(g: &Dag, root: NodeId) -> Vec<Option<NodeId>> {
    let n = g.node_count();
    // Reverse postorder from root.
    let mut rpo = Vec::with_capacity(n);
    let mut visited = BitSet::new(n);
    // Iterative post-order DFS.
    let mut stack = vec![(root, false)];
    while let Some((v, processed)) = stack.pop() {
        if processed {
            rpo.push(v);
            continue;
        }
        if !visited.insert(v.index()) {
            continue;
        }
        stack.push((v, true));
        for s in g.succs(v) {
            if !visited.contains(s.index()) {
                stack.push((s, false));
            }
        }
    }
    rpo.reverse();
    let mut rpo_number = vec![usize::MAX; n];
    for (i, &v) in rpo.iter().enumerate() {
        rpo_number[v.index()] = i;
    }

    let mut idom: Vec<Option<NodeId>> = vec![None; n];
    idom[root.index()] = Some(root);
    let mut changed = true;
    while changed {
        changed = false;
        for &v in &rpo {
            if v == root {
                continue;
            }
            let mut new_idom: Option<NodeId> = None;
            for p in g.preds(v) {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &rpo_number),
                });
            }
            if new_idom != idom[v.index()] {
                idom[v.index()] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(
    mut a: NodeId,
    mut b: NodeId,
    idom: &[Option<NodeId>],
    rpo_number: &[usize],
) -> NodeId {
    while a != b {
        while rpo_number[a.index()] > rpo_number[b.index()] {
            a = idom[a.index()].expect("walk stays within dominated region");
        }
        while rpo_number[b.index()] > rpo_number[a.index()] {
            b = idom[b.index()].expect("walk stays within dominated region");
        }
    }
    a
}

/// Hammock structure of a single-root, single-leaf DAG.
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind, NodeId};
/// use ursa_graph::hammock::HammockAnalysis;
///
/// // entry(0) -> {1, 2} -> join(3) -> exit(4): the diamond 0..=3 and the
/// // whole graph are hammocks.
/// let mut g = Dag::new(5);
/// for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
///     g.add_edge(NodeId(a), NodeId(b), EdgeKind::Data);
/// }
/// let h = HammockAnalysis::analyze(&g).unwrap();
/// assert!(h.pairs().contains(&(NodeId(0), NodeId(3))));
/// assert!(h.nesting(NodeId(1)) > h.nesting(NodeId(4)));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct HammockAnalysis {
    root: NodeId,
    leaf: NodeId,
    /// Immediate dominators (kept so [`HammockAnalysis::apply_edges`]
    /// can restrict recomputation to the cone a new edge reaches).
    idom: Vec<Option<NodeId>>,
    /// Immediate postdominators (reversed-graph counterpart of `idom`).
    ipdom: Vec<Option<NodeId>>,
    /// `dom.get(x, u)` ⇔ `u` dominates `x` (reflexive).
    dom: BitMatrix,
    /// `pdom.get(x, v)` ⇔ `v` postdominates `x` (reflexive).
    pdom: BitMatrix,
    nesting: Vec<u32>,
    pairs: Vec<(NodeId, NodeId)>,
    /// `regions[i]` is the node set of `pairs[i]`, boundary included —
    /// precomputed so [`HammockAnalysis::region`] and
    /// [`HammockAnalysis::innermost_containing`] are lookups rather than
    /// O(N) / O(pairs·N) scans on every query.
    regions: Vec<BitSet>,
}

impl HammockAnalysis {
    /// Analyzes `g`, which must be acyclic with exactly one root and one
    /// leaf.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalyzeHammockError`] when the shape requirements are
    /// not met.
    pub fn analyze(g: &Dag) -> Result<Self, AnalyzeHammockError> {
        if !g.is_acyclic() {
            return Err(AnalyzeHammockError::Cyclic);
        }
        let roots = g.roots();
        let [root] = roots[..] else {
            return Err(AnalyzeHammockError::RootNotUnique(roots.len()));
        };
        let leaves = g.leaves();
        let [leaf] = leaves[..] else {
            return Err(AnalyzeHammockError::LeafNotUnique(leaves.len()));
        };
        let n = g.node_count();

        let idom = immediate_dominators(g, root);
        let reversed = reverse(g);
        let ipdom = immediate_dominators(&reversed, leaf);

        let dom = dominance_matrix(&idom, n);
        let pdom = dominance_matrix(&ipdom, n);

        // Hammock (entry, exit) pairs: entry dominates exit and exit
        // postdominates entry (and both are reachable / co-reachable,
        // which single root+leaf guarantees here).
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && dom.get(v, u) && pdom.get(u, v) {
                    pairs.push((NodeId::from(u), NodeId::from(v)));
                }
            }
        }

        // Nesting level of x = number of hammock regions strictly
        // containing x as an interior node.
        let mut nesting = vec![0u32; n];
        for &(u, v) in &pairs {
            for (x, level) in nesting.iter_mut().enumerate() {
                if x != u.index()
                    && x != v.index()
                    && dom.get(x, u.index())
                    && pdom.get(x, v.index())
                {
                    *level += 1;
                }
            }
        }

        let regions = pairs
            .iter()
            .map(|&(u, v)| {
                let mut out = BitSet::new(n);
                for x in 0..n {
                    if dom.get(x, u.index()) && pdom.get(x, v.index()) {
                        out.insert(x);
                    }
                }
                out
            })
            .collect();

        Ok(HammockAnalysis {
            root,
            leaf,
            idom,
            ipdom,
            dom,
            pdom,
            nesting,
            pairs,
            regions,
        })
    }

    /// Re-derives the analysis after `edges` were inserted into the
    /// graph this analysis was computed from. `g` is the
    /// *post-insertion* DAG; the result equals
    /// `HammockAnalysis::analyze(g)` exactly (same pair order, same
    /// regions) but only recomputes what an edge can actually change:
    ///
    /// - a new edge `(u, v)` creates paths that *end* in `{v} ∪
    ///   descendants(v)` and *start* in `{u} ∪ ancestors(u)`, so
    ///   dominator rows can differ only inside the downstream cone and
    ///   postdominator rows only inside the upstream cone;
    /// - inside the downstream cone one pass in topological order is
    ///   exact, because every predecessor's immediate dominator is
    ///   final when a node is visited (outside-cone values cannot have
    ///   changed, inside-cone values were just recomputed);
    /// - a hammock pair `(a, b)` is affected only when `a`'s
    ///   postdominator row or `b`'s dominator row changed, so nesting
    ///   levels and regions of untouched nodes are patched by the
    ///   removed/added pair lists instead of being recounted.
    ///
    /// # Errors
    ///
    /// Returns the same [`AnalyzeHammockError`]s `analyze` would.
    pub fn apply_edges(
        &self,
        g: &Dag,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, AnalyzeHammockError> {
        let n = g.node_count();
        if edges.is_empty() {
            return Ok(self.clone());
        }
        if n != self.nesting.len() {
            // The node set changed since the base analysis; there is
            // nothing sound to reuse.
            return HammockAnalysis::analyze(g);
        }
        // Same shape checks as `analyze`, so error behaviour matches.
        let Some(topo) = g.topo_order() else {
            return Err(AnalyzeHammockError::Cyclic);
        };
        let roots = g.roots();
        let [root] = roots[..] else {
            return Err(AnalyzeHammockError::RootNotUnique(roots.len()));
        };
        let leaves = g.leaves();
        let [leaf] = leaves[..] else {
            return Err(AnalyzeHammockError::LeafNotUnique(leaves.len()));
        };
        debug_assert_eq!(
            (root, leaf),
            (self.root, self.leaf),
            "edge insertion cannot move the anchors"
        );

        // Cones the new edges can influence.
        let mut down = BitSet::new(n);
        let mut up = BitSet::new(n);
        for &(u, v) in edges {
            down.insert(v.index());
            down.union_with(&g.descendants(v));
            up.insert(u.index());
            up.union_with(&g.ancestors(u));
        }

        let mut topo_number = vec![usize::MAX; n];
        for (i, &v) in topo.iter().enumerate() {
            topo_number[v.index()] = i;
        }
        // `intersect` only needs a numbering that decreases along idom
        // chains (a dominator precedes its dominatee in every
        // topological order), so topo numbers substitute for the RPO
        // numbers `analyze` uses.
        let mut idom = self.idom.clone();
        for &v in &topo {
            if v == root || !down.contains(v.index()) {
                continue;
            }
            let mut new_idom: Option<NodeId> = None;
            for p in g.preds(v) {
                if idom[p.index()].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &topo_number),
                });
            }
            idom[v.index()] = new_idom;
        }
        let mut rtopo_number = vec![usize::MAX; n];
        for (i, &v) in topo.iter().rev().enumerate() {
            rtopo_number[v.index()] = i;
        }
        let mut ipdom = self.ipdom.clone();
        for &v in topo.iter().rev() {
            if v == leaf || !up.contains(v.index()) {
                continue;
            }
            // Predecessors in the reversed graph are successors here.
            let mut new_ipdom: Option<NodeId> = None;
            for p in g.succs(v) {
                if ipdom[p.index()].is_none() {
                    continue;
                }
                new_ipdom = Some(match new_ipdom {
                    None => p,
                    Some(cur) => intersect(cur, p, &ipdom, &rtopo_number),
                });
            }
            ipdom[v.index()] = new_ipdom;
        }

        // Rebuild exactly the matrix rows the cones cover, walking the
        // new idom chains the way `dominance_matrix` does.
        let mut dom = self.dom.clone();
        for x in down.iter() {
            dom.clear_row(x);
            let mut cur = NodeId::from(x);
            loop {
                dom.set(x, cur.index());
                match idom[cur.index()] {
                    Some(p) if p != cur => cur = p,
                    _ => break,
                }
            }
        }
        let mut pdom = self.pdom.clone();
        for x in up.iter() {
            pdom.clear_row(x);
            let mut cur = NodeId::from(x);
            loop {
                pdom.set(x, cur.index());
                match ipdom[cur.index()] {
                    Some(p) if p != cur => cur = p,
                    _ => break,
                }
            }
        }

        // Pairs: rescanning all (u, v) cells is two bit tests each and
        // reproduces `analyze`'s ascending order for free.
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && dom.get(v, u) && pdom.get(u, v) {
                    pairs.push((NodeId::from(u), NodeId::from(v)));
                }
            }
        }

        // Diff against the base pairs (both ascending) to patch the
        // nesting counters of untouched nodes by ±1 instead of
        // recounting every pair.
        let mut removed: Vec<(NodeId, NodeId)> = Vec::new();
        let mut added: Vec<(NodeId, NodeId)> = Vec::new();
        let mut old_index: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        {
            let (mut i, mut j) = (0, 0);
            while i < self.pairs.len() || j < pairs.len() {
                match (self.pairs.get(i), pairs.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        old_index.insert(a, i);
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        removed.push(a);
                        i += 1;
                    }
                    (Some(_), Some(&b)) => {
                        added.push(b);
                        j += 1;
                    }
                    (Some(&a), None) => {
                        removed.push(a);
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        added.push(b);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }

        let mut touched = down.clone();
        touched.union_with(&up);
        let mut nesting = self.nesting.clone();
        let strictly_inside = |x: usize, u: NodeId, v: NodeId| {
            x != u.index() && x != v.index() && dom.get(x, u.index()) && pdom.get(x, v.index())
        };
        for (x, level) in nesting.iter_mut().enumerate() {
            if touched.contains(x) {
                // Rows of x changed; recount from scratch.
                *level = pairs
                    .iter()
                    .filter(|&&(u, v)| strictly_inside(x, u, v))
                    .count() as u32;
            } else {
                // Rows of x are byte-identical to the base, so only the
                // pair set difference can move the count.
                for &(u, v) in &removed {
                    if strictly_inside(x, u, v) {
                        *level -= 1;
                    }
                }
                for &(u, v) in &added {
                    if strictly_inside(x, u, v) {
                        *level += 1;
                    }
                }
            }
        }

        // Regions: surviving pairs reuse the base bitset with the
        // touched nodes' membership re-tested; new pairs scan fresh.
        let regions = pairs
            .iter()
            .map(|&(u, v)| {
                if let Some(&oi) = old_index.get(&(u, v)) {
                    let mut r = self.regions[oi].clone();
                    for x in touched.iter() {
                        if dom.get(x, u.index()) && pdom.get(x, v.index()) {
                            r.insert(x);
                        } else {
                            r.remove(x);
                        }
                    }
                    r
                } else {
                    let mut r = BitSet::new(n);
                    for x in 0..n {
                        if dom.get(x, u.index()) && pdom.get(x, v.index()) {
                            r.insert(x);
                        }
                    }
                    r
                }
            })
            .collect();

        Ok(HammockAnalysis {
            root,
            leaf,
            idom,
            ipdom,
            dom,
            pdom,
            nesting,
            pairs,
            regions,
        })
    }

    /// The unique entry node of the DAG.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The unique exit node of the DAG.
    pub fn leaf(&self) -> NodeId {
        self.leaf
    }

    /// `true` if `u` dominates `x` (reflexively).
    pub fn dominates(&self, u: NodeId, x: NodeId) -> bool {
        self.dom.get(x.index(), u.index())
    }

    /// `true` if `v` postdominates `x` (reflexively).
    pub fn postdominates(&self, v: NodeId, x: NodeId) -> bool {
        self.pdom.get(x.index(), v.index())
    }

    /// Hammock nesting level of `x` (0 = only inside the whole-DAG
    /// hammock's boundary or outside every proper region).
    pub fn nesting(&self, x: NodeId) -> u32 {
        self.nesting[x.index()]
    }

    /// The paper's bipartite edge priority: the difference in nesting
    /// level between the endpoints (0 = the edge does not cross a
    /// hammock boundary).
    pub fn edge_priority(&self, a: NodeId, b: NodeId) -> u32 {
        self.nesting(a).abs_diff(self.nesting(b))
    }

    /// All hammock `(entry, exit)` pairs, including the whole DAG.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Every node of the hammock `(entry, exit)`, boundary included.
    /// Known `(entry, exit)` pairs are served from the precomputed
    /// region table; other pairs are computed on the fly.
    pub fn region(&self, entry: NodeId, exit: NodeId) -> BitSet {
        if let Some(i) = self.pairs.iter().position(|&p| p == (entry, exit)) {
            return self.regions[i].clone();
        }
        let n = self.nesting.len();
        let mut out = BitSet::new(n);
        for x in 0..n {
            if self.dom.get(x, entry.index()) && self.pdom.get(x, exit.index()) {
                out.insert(x);
            }
        }
        out
    }

    /// The smallest hammock whose region contains every node of `nodes`;
    /// falls back to the whole-DAG hammock. Returns the pair and region.
    pub fn innermost_containing(&self, nodes: &BitSet) -> ((NodeId, NodeId), BitSet) {
        let mut best: Option<(usize, usize)> = None;
        for (i, region) in self.regions.iter().enumerate() {
            if nodes.is_subset(region) {
                let better = match best {
                    None => true,
                    Some((_, len)) => region.len() < len,
                };
                if better {
                    best = Some((i, region.len()));
                }
            }
        }
        match best {
            Some((i, _)) => (self.pairs[i], self.regions[i].clone()),
            None => {
                let region = self.region(self.root, self.leaf);
                ((self.root, self.leaf), region)
            }
        }
    }
}

/// A memo of [`HammockAnalysis`] results keyed by DAG structural
/// fingerprint ([`Dag::fingerprint`]).
///
/// The reduce loop's probe/revert cycle visits a small set of graph
/// structures over and over: the base graph between probes, and each
/// tentative edit's graph once. Because the fingerprint is XOR-composed,
/// reverting an edit restores the key exactly, so the base analysis is a
/// guaranteed hit after every rollback — hammocks that an edit could not
/// reach are never re-analyzed.
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind, NodeId};
/// use ursa_graph::hammock::HammockCache;
///
/// let mut g = Dag::new(3);
/// g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
/// g.add_edge(NodeId(1), NodeId(2), EdgeKind::Data);
/// let cache = HammockCache::new();
/// let first = cache.analyze(&g).unwrap();
/// let again = cache.analyze(&g).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&first, &again), "second call is a hit");
/// ```
#[derive(Clone, Debug, Default)]
pub struct HammockCache {
    memo: std::sync::Arc<std::sync::Mutex<HashMap<u64, Arc<HammockAnalysis>>>>,
}

impl HammockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        HammockCache::default()
    }

    /// Returns the analysis of `g`, computing and memoizing it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalyzeHammockError`] from a miss; errors are not
    /// cached (they are cheap to rediscover and should be impossible on
    /// the allocator's anchored DAGs).
    pub fn analyze(&self, g: &Dag) -> Result<Arc<HammockAnalysis>, AnalyzeHammockError> {
        let key = g.fingerprint();
        if let Some(hit) = self.memo.lock().expect("hammock cache lock").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let analysis = Arc::new(HammockAnalysis::analyze(g)?);
        let mut memo = self.memo.lock().expect("hammock cache lock");
        // The reduce loop only moves forward structurally: old entries
        // are never revisited once a round is adopted, so a full clear
        // at the cap bounds memory without hurting the hit rate that
        // matters (re-analysis of the current base between probes).
        if memo.len() >= 64 {
            memo.clear();
        }
        memo.insert(key, Arc::clone(&analysis));
        Ok(analysis)
    }

    /// Memoizes `analysis` under `key` (a [`Dag::fingerprint`]), as if
    /// it had been computed by [`HammockCache::analyze`]. Lets callers
    /// that derived an analysis by other means — notably
    /// [`HammockAnalysis::apply_edges`] after an adopted edit — make it
    /// available to later lookups.
    pub fn insert(&self, key: u64, analysis: Arc<HammockAnalysis>) {
        let mut memo = self.memo.lock().expect("hammock cache lock");
        if memo.len() >= 64 {
            memo.clear();
        }
        memo.insert(key, analysis);
    }

    /// Number of memoized analyses.
    pub fn len(&self) -> usize {
        self.memo.lock().expect("hammock cache lock").len()
    }

    /// `true` if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn reverse(g: &Dag) -> Dag {
    let mut r = Dag::new(g.node_count());
    for e in g.edges() {
        r.add_edge(e.to, e.from, e.kind);
    }
    r
}

fn dominance_matrix(idom: &[Option<NodeId>], n: usize) -> BitMatrix {
    // dom.get(x, u) = u dominates x; computed by walking the idom chain.
    let mut dom = BitMatrix::new(n);
    for x in 0..n {
        let mut cur = NodeId::from(x);
        loop {
            dom.set(x, cur.index());
            match idom[cur.index()] {
                Some(p) if p != cur => cur = p,
                _ => break,
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeKind;

    fn build(n: usize, edges: &[(u32, u32)]) -> Dag {
        let mut g = Dag::new(n);
        for &(a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b), EdgeKind::Data);
        }
        g
    }

    /// entry(0) -> inner diamond (1..=4) -> exit(5), with an outer
    /// diamond 0 -> 6 -> 5 bypass.
    fn nested() -> Dag {
        build(
            7,
            &[
                (0, 1),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (4, 5),
                (0, 6),
                (6, 5),
            ],
        )
    }

    #[test]
    fn idom_of_diamond() {
        let g = build(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idom = immediate_dominators(&g, NodeId(0));
        assert_eq!(idom[0], Some(NodeId(0)));
        assert_eq!(idom[1], Some(NodeId(0)));
        assert_eq!(idom[2], Some(NodeId(0)));
        assert_eq!(idom[3], Some(NodeId(0)), "join dominated by fork, not arms");
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let mut g = build(2, &[(0, 1)]);
        let _island = g.add_node();
        let idom = immediate_dominators(&g, NodeId(0));
        assert_eq!(idom[2], None);
    }

    #[test]
    fn whole_dag_is_a_hammock() {
        let g = build(3, &[(0, 1), (1, 2)]);
        let h = HammockAnalysis::analyze(&g).unwrap();
        assert!(h.pairs().contains(&(NodeId(0), NodeId(2))));
        assert_eq!(h.root(), NodeId(0));
        assert_eq!(h.leaf(), NodeId(2));
    }

    #[test]
    fn nested_hammock_detected_and_nesting_increases() {
        let g = nested();
        let h = HammockAnalysis::analyze(&g).unwrap();
        // Inner diamond 1..4 is a hammock.
        assert!(h.pairs().contains(&(NodeId(1), NodeId(4))));
        // Arms of the inner diamond are more deeply nested than node 6.
        assert!(h.nesting(NodeId(2)) > h.nesting(NodeId(6)));
        // Edge inside the inner diamond has priority 0.
        assert_eq!(h.edge_priority(NodeId(2), NodeId(3)), 0);
        // Edge from deep inside to the exit crosses boundaries.
        assert!(h.edge_priority(NodeId(2), NodeId(5)) > 0);
    }

    #[test]
    fn region_of_inner_hammock() {
        let g = nested();
        let h = HammockAnalysis::analyze(&g).unwrap();
        let region = h.region(NodeId(1), NodeId(4));
        assert_eq!(region.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn innermost_containing_picks_smallest() {
        let g = nested();
        let h = HammockAnalysis::analyze(&g).unwrap();
        let mut nodes = BitSet::new(7);
        nodes.insert(2);
        nodes.insert(3);
        let ((entry, exit), region) = h.innermost_containing(&nodes);
        assert_eq!((entry, exit), (NodeId(1), NodeId(4)));
        assert_eq!(region.len(), 4);
    }

    #[test]
    fn multi_root_rejected() {
        let g = build(3, &[(0, 2), (1, 2)]);
        assert_eq!(
            HammockAnalysis::analyze(&g).err(),
            Some(AnalyzeHammockError::RootNotUnique(2))
        );
    }

    #[test]
    fn multi_leaf_rejected() {
        let g = build(3, &[(0, 1), (0, 2)]);
        assert_eq!(
            HammockAnalysis::analyze(&g).err(),
            Some(AnalyzeHammockError::LeafNotUnique(2))
        );
    }

    #[test]
    fn dominance_queries() {
        let g = nested();
        let h = HammockAnalysis::analyze(&g).unwrap();
        assert!(h.dominates(NodeId(1), NodeId(4)));
        assert!(h.dominates(NodeId(4), NodeId(4)), "dominance is reflexive");
        assert!(!h.dominates(NodeId(2), NodeId(4)));
        assert!(h.postdominates(NodeId(4), NodeId(1)));
        assert!(!h.postdominates(NodeId(2), NodeId(1)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = AnalyzeHammockError::RootNotUnique(3);
        assert!(e.to_string().contains("exactly one root"));
    }

    #[test]
    fn cache_hits_after_edit_and_revert() {
        let mut g = nested();
        let cache = HammockCache::new();
        let base = cache.analyze(&g).unwrap();
        assert_eq!(cache.len(), 1);
        // A tentative sequence edge changes the structure → miss.
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Sequence);
        let edited = cache.analyze(&g).unwrap();
        assert!(!Arc::ptr_eq(&base, &edited));
        assert_eq!(cache.len(), 2);
        // Reverting restores the fingerprint → guaranteed hit, no
        // third analysis.
        g.remove_edge(NodeId(2), NodeId(3), EdgeKind::Sequence);
        let back = cache.analyze(&g).unwrap();
        assert!(Arc::ptr_eq(&base, &back));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn apply_edges_matches_fresh_analysis_on_nested() {
        let mut g = nested();
        let base = HammockAnalysis::analyze(&g).unwrap();
        // An edge inside the inner diamond: breaks the (1,4) sibling
        // structure locally.
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Sequence);
        let delta = base.apply_edges(&g, &[(NodeId(2), NodeId(3))]).unwrap();
        let fresh = HammockAnalysis::analyze(&g).unwrap();
        assert_eq!(delta, fresh);
    }

    #[test]
    fn apply_edges_handles_cross_region_and_batched_edges() {
        let mut g = nested();
        let base = HammockAnalysis::analyze(&g).unwrap();
        // One edge from the bypass into the diamond, one inside it —
        // applied as a single batch, as a commit would.
        let edges = [(NodeId(6), NodeId(4)), (NodeId(2), NodeId(3))];
        for &(a, b) in &edges {
            g.add_edge(a, b, EdgeKind::Sequence);
        }
        let delta = base.apply_edges(&g, &edges).unwrap();
        let fresh = HammockAnalysis::analyze(&g).unwrap();
        assert_eq!(delta, fresh);
    }

    #[test]
    fn apply_edges_with_no_edges_is_identity() {
        let g = nested();
        let base = HammockAnalysis::analyze(&g).unwrap();
        assert_eq!(base.apply_edges(&g, &[]).unwrap(), base);
    }

    /// Randomized equivalence: layered anchored DAGs, a few inserted
    /// forward edges, delta application must equal fresh analysis.
    #[test]
    fn apply_edges_matches_fresh_analysis_randomized() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // splitmix64, hand-rolled to keep the test hermetic.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for case in 0..40 {
            let interior = 8 + (case % 17);
            let n = interior + 2; // + synthetic root and leaf
            let root = NodeId(0);
            let leaf = NodeId((n - 1) as u32);
            let mut g = Dag::new(n);
            // Random forward edges between interior nodes 1..n-1.
            for a in 1..n - 1 {
                for b in (a + 1)..(n - 1) {
                    if next() % 100 < 25 {
                        g.add_edge(NodeId(a as u32), NodeId(b as u32), EdgeKind::Data);
                    }
                }
            }
            // Anchor: root feeds every source, every sink feeds leaf.
            for x in 1..n - 1 {
                let x_id = NodeId(x as u32);
                if g.preds(x_id).next().is_none() {
                    g.add_edge(root, x_id, EdgeKind::Data);
                }
                if g.succs(x_id).next().is_none() {
                    g.add_edge(x_id, leaf, EdgeKind::Data);
                }
            }
            let base = HammockAnalysis::analyze(&g).unwrap();
            // Insert 1..=3 fresh forward edges between interior nodes.
            let mut edges = Vec::new();
            let mut guard = 0;
            while edges.len() < 1 + (case % 3) && guard < 200 {
                guard += 1;
                let a = 1 + (next() as usize % interior);
                let b = 1 + (next() as usize % interior);
                let (a, b) = (a.min(b), a.max(b));
                if a == b {
                    continue;
                }
                let (a, b) = (NodeId(a as u32), NodeId(b as u32));
                // Forward in node order is acyclic by construction of
                // the generator; skip pre-existing duplicates.
                if g.succs(a).any(|s| s == b) {
                    continue;
                }
                g.add_edge(a, b, EdgeKind::Sequence);
                edges.push((a, b));
            }
            let delta = base.apply_edges(&g, &edges).unwrap();
            let fresh = HammockAnalysis::analyze(&g).unwrap();
            assert_eq!(delta, fresh, "case {case}: {edges:?}");
        }
    }

    #[test]
    fn cache_insert_serves_later_lookups() {
        let g = nested();
        let cache = HammockCache::new();
        let analysis = Arc::new(HammockAnalysis::analyze(&g).unwrap());
        cache.insert(g.fingerprint(), Arc::clone(&analysis));
        let hit = cache.analyze(&g).unwrap();
        assert!(Arc::ptr_eq(&analysis, &hit));
    }

    #[test]
    fn cached_regions_match_on_the_fly_computation() {
        let g = nested();
        let h = HammockAnalysis::analyze(&g).unwrap();
        for &(u, v) in h.pairs() {
            let cached = h.region(u, v);
            // Recompute by the definition.
            let n = 7;
            let mut expect = Vec::new();
            for x in 0..n {
                let x_id = NodeId::from(x);
                if h.dominates(u, x_id) && h.postdominates(v, x_id) {
                    expect.push(x);
                }
            }
            assert_eq!(cached.iter().collect::<Vec<_>>(), expect, "({u}, {v})");
        }
    }
}
