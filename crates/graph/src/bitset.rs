//! Dense bit sets and bit matrices.
//!
//! URSA's measurement algorithms are dominated by partial-order queries
//! ("is `b` a descendant of `a`?") and by set algebra over node sets
//! (ancestors, descendants, stages). Both are served by a dense, fixed
//! capacity bit set — graphs here are trace DAGs with at most a few
//! thousand nodes, so dense storage wins over any sparse scheme.

use std::fmt;

type Word = u64;
const WORD_BITS: usize = Word::BITS as usize;

/// A fixed-capacity set of `usize` values stored as a dense bit vector.
///
/// # Examples
///
/// ```
/// use ursa_graph::bitset::BitSet;
///
/// let mut s = BitSet::new(70);
/// s.insert(3);
/// s.insert(69);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 69]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<Word>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim_tail();
        s
    }

    /// The exclusive upper bound on storable values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn trim_tail(&mut self) {
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1 << tail) - 1;
            }
        }
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(
            value < self.capacity,
            "bit {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `value`, returning `true` if it was present.
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / WORD_BITS, value % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Tests membership of `value`. Out-of-range values are absent.
    pub fn contains(&self, value: usize) -> bool {
        value < self.capacity && self.words[value / WORD_BITS] & (1 << (value % WORD_BITS)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every element of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if the sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements shared with `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: Word,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the maximum value seen.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A dense square boolean matrix, used for transitive closures
/// (reachability) and for the `CanReuse` relations of the paper's §3.
///
/// Row `i` is a [`BitSet`]-like word row; `get(i, j)` answers "does the
/// relation hold between `i` and `j`".
///
/// # Examples
///
/// ```
/// use ursa_graph::bitset::BitMatrix;
///
/// let mut m = BitMatrix::new(3);
/// m.set(0, 2);
/// assert!(m.get(0, 2));
/// assert!(!m.get(2, 0));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<Word>,
}

impl BitMatrix {
    /// Creates an all-false `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD_BITS).max(1);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The number of rows (and columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the matrix has zero rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Sets entry `(i, j)` to true.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize) {
        assert!(
            i < self.n && j < self.n,
            "({i},{j}) out of bounds for {}",
            self.n
        );
        self.bits[i * self.words_per_row + j / WORD_BITS] |= 1 << (j % WORD_BITS);
    }

    /// Clears entry `(i, j)`.
    pub fn unset(&mut self, i: usize, j: usize) {
        assert!(
            i < self.n && j < self.n,
            "({i},{j}) out of bounds for {}",
            self.n
        );
        self.bits[i * self.words_per_row + j / WORD_BITS] &= !(1 << (j % WORD_BITS));
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(
            i < self.n && j < self.n,
            "({i},{j}) out of bounds for {}",
            self.n
        );
        self.bits[i * self.words_per_row + j / WORD_BITS] & (1 << (j % WORD_BITS)) != 0
    }

    /// Clears every entry of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn clear_row(&mut self, i: usize) {
        assert!(i < self.n, "row {i} out of bounds for {}", self.n);
        let range = self.row_range(i);
        self.bits[range].fill(0);
    }

    /// ORs row `src` into row `dst` (`dst |= src`). Used to propagate
    /// reachability along an edge.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.n && dst < self.n);
        if src == dst {
            return;
        }
        let (s, d) = (self.row_range(src), self.row_range(dst));
        // Rows never overlap for src != dst.
        for k in 0..self.words_per_row {
            let v = self.bits[s.start + k];
            self.bits[d.start + k] |= v;
        }
    }

    /// Iterates over the true columns of row `i` in increasing order.
    pub fn row_iter(&self, i: usize) -> RowIter<'_> {
        let range = self.row_range(i);
        RowIter {
            words: &self.bits[range],
            word_idx: 0,
            current: 0,
            n: self.n,
            started: false,
        }
    }

    /// Number of true entries in row `i`.
    pub fn row_len(&self, i: usize) -> usize {
        self.bits[self.row_range(i)]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Copies row `i` into a [`BitSet`] of capacity `n`.
    pub fn row_bitset(&self, i: usize) -> BitSet {
        let mut s = BitSet::new(self.n);
        s.words.copy_from_slice(&self.bits[self.row_range(i)]);
        s.trim_tail();
        s
    }
}

/// Iterator over the true columns of a [`BitMatrix`] row.
pub struct RowIter<'a> {
    words: &'a [Word],
    word_idx: usize,
    current: Word,
    n: usize,
    started: bool,
}

impl Iterator for RowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if !self.started {
            self.started = true;
            self.current = self.words.first().copied().unwrap_or(0);
        }
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let v = self.word_idx * WORD_BITS + bit;
                return if v < self.n { Some(v) } else { None };
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.n {
            write!(f, "  {i}: ")?;
            f.debug_set().entries(self.row_iter(i)).finish()?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert!(!s.contains(9));
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports already-present");
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn full_set_is_exactly_capacity() {
        let s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        assert!(!s.contains(67));
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1usize, 3, 5, 7].into_iter().collect();
        let cap = a.capacity();
        let mut b = BitSet::new(cap);
        b.extend([3usize, 4, 7]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5, 7]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(a.intersection_len(&b), 2);

        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5]);

        let empty = BitSet::new(cap);
        assert!(empty.is_disjoint(&b));
        assert!(i.is_subset(&u));
        assert!(!u.is_subset(&i));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let vals = [0usize, 63, 64, 65, 127, 128];
        let s: BitSet = vals.into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vals.to_vec());
    }

    #[test]
    fn matrix_set_get() {
        let mut m = BitMatrix::new(100);
        m.set(3, 99);
        m.set(3, 0);
        m.set(99, 99);
        assert!(m.get(3, 99));
        assert!(m.get(3, 0));
        assert!(!m.get(0, 3));
        assert_eq!(m.row_iter(3).collect::<Vec<_>>(), vec![0, 99]);
        assert_eq!(m.row_len(3), 2);
        m.unset(3, 0);
        assert!(!m.get(3, 0));
    }

    #[test]
    fn matrix_or_row_propagates() {
        let mut m = BitMatrix::new(5);
        m.set(1, 2);
        m.set(1, 4);
        m.set(0, 1);
        m.or_row_into(1, 0);
        assert!(m.get(0, 2));
        assert!(m.get(0, 4));
        assert!(m.get(0, 1), "existing bits preserved");
    }

    #[test]
    fn matrix_row_bitset_matches_row_iter() {
        let mut m = BitMatrix::new(70);
        for j in [0, 5, 63, 64, 69] {
            m.set(7, j);
        }
        let row = m.row_bitset(7);
        assert_eq!(
            row.iter().collect::<Vec<_>>(),
            m.row_iter(7).collect::<Vec<_>>()
        );
        assert_eq!(row.capacity(), 70);
    }

    #[test]
    fn zero_sized_matrix_is_fine() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = BitSet::new(3);
        assert_eq!(format!("{s:?}"), "{}");
        let m = BitMatrix::new(1);
        assert!(!format!("{m:?}").is_empty());
    }
}
