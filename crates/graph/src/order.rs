//! Longest-path analyses over weighted DAGs: ASAP/ALAP levels, slack and
//! critical-path length.
//!
//! URSA's transformation heuristics rank nodes by how close they sit to a
//! hammock's entry or exit (paper §4.1: "the X nodes closest to the
//! hammock's entry node") and evaluate candidate transformations by their
//! effect on the critical path (paper §5). Both notions reduce to longest
//! paths with node weights = instruction latencies.

use crate::dag::{Dag, NodeId};

/// Longest-path schedule bounds for every node of a DAG.
///
/// `asap[v]` is the earliest cycle `v` can start (longest weighted path
/// from any root to `v`, exclusive of `v`'s own latency). `alap[v]` is the
/// latest start that still permits the critical-path-length schedule.
///
/// # Examples
///
/// ```
/// use ursa_graph::dag::{Dag, EdgeKind, NodeId};
/// use ursa_graph::order::Levels;
///
/// let mut g = Dag::new(3);
/// g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
/// g.add_edge(NodeId(1), NodeId(2), EdgeKind::Data);
/// let levels = Levels::unit(&g);
/// assert_eq!(levels.critical_path(), 3);
/// assert_eq!(levels.asap(NodeId(2)), 2);
/// assert_eq!(levels.slack(NodeId(1)), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Levels {
    asap: Vec<u64>,
    alap: Vec<u64>,
    critical_path: u64,
}

impl Levels {
    /// Computes levels with per-node latencies `weights` (cycles each node
    /// occupies before dependents may start). Zero weights are allowed for
    /// pseudo nodes (entry/exit anchors, live-in markers) that take no
    /// machine time.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != g.node_count()` or if `g` is cyclic.
    pub fn weighted(g: &Dag, weights: &[u64]) -> Self {
        assert_eq!(weights.len(), g.node_count(), "one weight per node");
        let order = g.topo_order().expect("levels require an acyclic graph");
        let n = g.node_count();
        let mut asap = vec![0u64; n];
        for &v in &order {
            for s in g.succs(v) {
                asap[s.index()] = asap[s.index()].max(asap[v.index()] + weights[v.index()]);
            }
        }
        let critical_path = order
            .iter()
            .map(|&v| asap[v.index()] + weights[v.index()])
            .max()
            .unwrap_or(0);
        let mut alap = vec![critical_path; n];
        for &v in order.iter().rev() {
            let finish = g
                .succs(v)
                .map(|s| alap[s.index()])
                .min()
                .unwrap_or(critical_path);
            alap[v.index()] = finish - weights[v.index()];
        }
        Levels {
            asap,
            alap,
            critical_path,
        }
    }

    /// Computes levels with unit latency for every node.
    pub fn unit(g: &Dag) -> Self {
        Levels::weighted(g, &vec![1; g.node_count()])
    }

    /// Earliest start cycle of `v`.
    pub fn asap(&self, v: NodeId) -> u64 {
        self.asap[v.index()]
    }

    /// Latest start cycle of `v` consistent with the critical path.
    pub fn alap(&self, v: NodeId) -> u64 {
        self.alap[v.index()]
    }

    /// Scheduling freedom of `v`; zero for critical nodes.
    pub fn slack(&self, v: NodeId) -> u64 {
        self.alap[v.index()] - self.asap[v.index()]
    }

    /// Length in cycles of the longest weighted path through the DAG —
    /// the lower bound on any schedule's length with unlimited resources.
    pub fn critical_path(&self) -> u64 {
        self.critical_path
    }

    /// `true` if `v` lies on a critical path.
    pub fn is_critical(&self, v: NodeId) -> bool {
        self.slack(v) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeKind;

    fn diamond() -> Dag {
        let mut g = Dag::new(4);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        g.add_edge(NodeId(0), NodeId(2), EdgeKind::Data);
        g.add_edge(NodeId(1), NodeId(3), EdgeKind::Data);
        g.add_edge(NodeId(2), NodeId(3), EdgeKind::Data);
        g
    }

    #[test]
    fn unit_diamond_levels() {
        let l = Levels::unit(&diamond());
        assert_eq!(l.critical_path(), 3);
        assert_eq!(l.asap(NodeId(0)), 0);
        assert_eq!(l.asap(NodeId(1)), 1);
        assert_eq!(l.asap(NodeId(3)), 2);
        assert!(l.is_critical(NodeId(0)));
        assert!(l.is_critical(NodeId(3)));
        assert_eq!(l.slack(NodeId(1)), 0);
    }

    #[test]
    fn weighted_latency_shifts_critical_path() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, with node 2 costing 5 cycles.
        let g = diamond();
        let l = Levels::weighted(&g, &[1, 1, 5, 1]);
        assert_eq!(l.critical_path(), 7); // 0 (1) + 2 (5) + 3 (1)
        assert_eq!(l.asap(NodeId(3)), 6);
        assert_eq!(l.alap(NodeId(1)), 5);
        assert_eq!(l.slack(NodeId(1)), 4);
        assert!(l.is_critical(NodeId(2)));
        assert!(!l.is_critical(NodeId(1)));
    }

    #[test]
    fn isolated_nodes_have_full_slack() {
        let mut g = Dag::new(3);
        g.add_edge(NodeId(0), NodeId(1), EdgeKind::Data);
        let l = Levels::unit(&g);
        assert_eq!(l.critical_path(), 2);
        assert_eq!(l.asap(NodeId(2)), 0);
        assert_eq!(l.alap(NodeId(2)), 1);
        assert_eq!(l.slack(NodeId(2)), 1);
    }

    #[test]
    fn empty_graph_has_zero_critical_path() {
        let g = Dag::new(0);
        let l = Levels::unit(&g);
        assert_eq!(l.critical_path(), 0);
    }

    #[test]
    fn zero_weight_pseudo_nodes_take_no_time() {
        // Node 0 is a zero-latency entry anchor.
        let g = diamond();
        let l = Levels::weighted(&g, &[0, 1, 1, 1]);
        assert_eq!(l.critical_path(), 2);
        assert_eq!(l.asap(NodeId(1)), 0);
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn wrong_weight_count_rejected() {
        let g = diamond();
        Levels::weighted(&g, &[1, 1]);
    }
}
