//! VLIW machine descriptions.
//!
//! URSA needs to know, for each resource class, how many instances the
//! target provides (paper §2: "levels supported by the target machine").
//! Two machine shapes are modeled:
//!
//! * **Homogeneous** — the paper's running model: every instruction can
//!   execute on any of `n` identical, non-pipelined functional units with
//!   unit latency, and there is a single file of `r` registers. This is
//!   the configuration the worked example (Figure 2/3) assumes.
//! * **Classed** — functional units are partitioned into classes (ALU,
//!   multiplier, divider, memory port, branch unit) with per-class
//!   latencies, exercising the paper's §5 extension to "several classes
//!   of a resource".
//!
//! Machine descriptions are plain data with an explicit JSON form
//! (via the in-tree `ursa-json`), so experiment configurations can be
//! stored alongside results. The wire format is stable: `fus` is a
//! list of `[class, count]` pairs and `pipelined` defaults to `false`
//! when absent, so descriptions written before the field existed still
//! parse.

use std::fmt;
use ursa_json::Value;

/// A functional-unit class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FuClass {
    /// Any operation (homogeneous machines).
    Universal,
    /// Add/sub/logic/compare/move.
    Alu,
    /// Multiplication.
    Mul,
    /// Division and remainder.
    Div,
    /// Loads and stores (memory port).
    Mem,
    /// Branches.
    Branch,
}

impl FuClass {
    /// All classes, for iteration.
    pub const ALL: [FuClass; 6] = [
        FuClass::Universal,
        FuClass::Alu,
        FuClass::Mul,
        FuClass::Div,
        FuClass::Mem,
        FuClass::Branch,
    ];

    /// The JSON wire name (the variant name, matching the historical
    /// serde encoding of the enum).
    fn wire_name(self) -> &'static str {
        match self {
            FuClass::Universal => "Universal",
            FuClass::Alu => "Alu",
            FuClass::Mul => "Mul",
            FuClass::Div => "Div",
            FuClass::Mem => "Mem",
            FuClass::Branch => "Branch",
        }
    }

    /// Inverse of [`FuClass::wire_name`].
    fn from_wire_name(name: &str) -> Option<FuClass> {
        FuClass::ALL.into_iter().find(|c| c.wire_name() == name)
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Universal => "universal",
            FuClass::Alu => "alu",
            FuClass::Mul => "mul",
            FuClass::Div => "div",
            FuClass::Mem => "mem",
            FuClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// The coarse operation kinds a machine assigns classes and latencies to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// Constant materialization, moves, add/sub/logic/compares.
    Alu,
    /// Multiplications.
    Mul,
    /// Divisions and remainders.
    Div,
    /// Loads.
    Load,
    /// Stores.
    Store,
    /// Branches.
    Branch,
}

impl OpKind {
    /// Classifies an IR instruction.
    pub fn of_instr(instr: &ursa_ir::instr::Instr) -> OpKind {
        use ursa_ir::instr::{BinOp, Instr};
        match instr {
            Instr::Const { .. } | Instr::Un { .. } => OpKind::Alu,
            Instr::Bin { op, .. } => match op {
                BinOp::Mul => OpKind::Mul,
                BinOp::Div | BinOp::Rem => OpKind::Div,
                _ => OpKind::Alu,
            },
            Instr::Load { .. } => OpKind::Load,
            Instr::Store { .. } => OpKind::Store,
        }
    }
}

/// Per-kind instruction latencies in cycles (non-pipelined: the unit is
/// busy for the whole latency, per the paper's §3.2 model).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// ALU operations.
    pub alu: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Loads.
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Branches.
    pub branch: u64,
}

impl LatencyModel {
    /// Every operation takes one cycle — the paper's model.
    pub fn unit() -> Self {
        LatencyModel {
            alu: 1,
            mul: 1,
            div: 1,
            load: 1,
            store: 1,
            branch: 1,
        }
    }

    /// A representative early-90s VLIW timing: 1-cycle ALU, 3-cycle
    /// multiply, 10-cycle divide, 2-cycle loads.
    pub fn classic() -> Self {
        LatencyModel {
            alu: 1,
            mul: 3,
            div: 10,
            load: 2,
            store: 1,
            branch: 1,
        }
    }

    /// Latency of an operation kind.
    pub fn of(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Alu => self.alu,
            OpKind::Mul => self.mul,
            OpKind::Div => self.div,
            OpKind::Load => self.load,
            OpKind::Store => self.store,
            OpKind::Branch => self.branch,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::unit()
    }
}

/// A VLIW target machine description.
///
/// # Examples
///
/// ```
/// use ursa_machine::{FuClass, Machine};
///
/// let m = Machine::homogeneous(4, 8);
/// assert_eq!(m.fu_count(FuClass::Universal), 4);
/// assert_eq!(m.registers(), 8);
/// assert_eq!(m.total_fus(), 4);
///
/// let c = Machine::classic_vliw();
/// assert!(c.fu_count(FuClass::Alu) > 0);
/// assert!(c.is_classed());
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Machine {
    name: String,
    /// `(class, count)` pairs; homogeneous machines have a single
    /// `Universal` entry.
    fus: Vec<(FuClass, u32)>,
    registers: u32,
    latencies: LatencyModel,
    /// Pipelined functional units accept a new operation every cycle
    /// even while earlier results are still in flight (the paper's §6
    /// superscalar extension). Non-pipelined units (the paper's base
    /// model) stay busy for the whole latency. Absent in JSON means
    /// `false`, so pre-extension descriptions still parse.
    pipelined: bool,
}

impl Machine {
    /// The paper's machine model: `fus` identical functional units,
    /// `registers` registers, unit latency.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn homogeneous(fus: u32, registers: u32) -> Self {
        Machine::try_homogeneous(fus, registers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Machine::homogeneous`]: a zero count becomes
    /// [`ParseError::Invalid`] instead of a panic.
    pub fn try_homogeneous(fus: u32, registers: u32) -> Result<Self, ParseError> {
        if fus == 0 {
            return Err(ParseError::Invalid(
                "a machine needs at least one functional unit".into(),
            ));
        }
        if registers == 0 {
            return Err(ParseError::Invalid(
                "a machine needs at least one register".into(),
            ));
        }
        Ok(Machine {
            name: format!("vliw{fus}r{registers}"),
            fus: vec![(FuClass::Universal, fus)],
            registers,
            latencies: LatencyModel::unit(),
            pipelined: false,
        })
    }

    /// A representative classed VLIW: 4 ALUs, 2 multipliers, 1 divider,
    /// 2 memory ports, 1 branch unit, 16 registers, classic latencies.
    pub fn classic_vliw() -> Self {
        MachineBuilder::new("classic-vliw")
            .fu(FuClass::Alu, 4)
            .fu(FuClass::Mul, 2)
            .fu(FuClass::Div, 1)
            .fu(FuClass::Mem, 2)
            .fu(FuClass::Branch, 1)
            .registers(16)
            .latencies(LatencyModel::classic())
            .build()
    }

    /// Starts building a custom machine.
    pub fn builder(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder::new(name)
    }

    /// The machine's name (used in experiment output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` when functional units are split into classes.
    pub fn is_classed(&self) -> bool {
        !matches!(self.fus[..], [(FuClass::Universal, _)])
    }

    /// Number of functional units of `class` (0 if absent).
    pub fn fu_count(&self, class: FuClass) -> u32 {
        self.fus
            .iter()
            .find(|&&(c, _)| c == class)
            .map_or(0, |&(_, n)| n)
    }

    /// Total functional units across classes.
    pub fn total_fus(&self) -> u32 {
        self.fus.iter().map(|&(_, n)| n).sum()
    }

    /// The `(class, count)` pairs of this machine.
    pub fn fu_classes(&self) -> &[(FuClass, u32)] {
        &self.fus
    }

    /// Number of registers (single register class).
    pub fn registers(&self) -> u32 {
        self.registers
    }

    /// Returns a copy with a different register count — handy for
    /// parameter sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is zero.
    pub fn with_registers(&self, registers: u32) -> Machine {
        self.try_with_registers(registers)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Machine::with_registers`]: a zero count becomes
    /// [`ParseError::Invalid`] instead of a panic.
    pub fn try_with_registers(&self, registers: u32) -> Result<Machine, ParseError> {
        if registers == 0 {
            return Err(ParseError::Invalid(
                "a machine needs at least one register".into(),
            ));
        }
        let mut m = self.clone();
        m.registers = registers;
        m.name = format!("{}-r{registers}", self.name);
        Ok(m)
    }

    /// The latency model.
    pub fn latencies(&self) -> &LatencyModel {
        &self.latencies
    }

    /// Latency of an operation kind on this machine.
    pub fn latency_of(&self, kind: OpKind) -> u64 {
        self.latencies.of(kind)
    }

    /// `true` when units accept a new operation every cycle.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Cycles a functional unit stays *occupied* by `kind`: the full
    /// latency on the paper's non-pipelined model, one cycle on a
    /// pipelined machine. The CanReuse_FU relation is unchanged either
    /// way — a dependent instruction issues strictly later, so in the
    /// worst case the simultaneous-issue width still equals the maximum
    /// antichain.
    pub fn occupancy_of(&self, kind: OpKind) -> u64 {
        if self.pipelined {
            1
        } else {
            self.latencies.of(kind)
        }
    }

    /// Occupancy of a concrete IR instruction.
    pub fn instr_occupancy(&self, instr: &ursa_ir::instr::Instr) -> u64 {
        self.occupancy_of(OpKind::of_instr(instr))
    }

    /// Serializes the machine description to pretty JSON, suitable for
    /// storing experiment configurations.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// The machine description as a JSON value (for embedding into
    /// larger documents, e.g. bench result files).
    pub fn to_json_value(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.as_str())),
            (
                "fus",
                Value::array(self.fus.iter().map(|&(class, count)| {
                    Value::array([Value::from(class.wire_name()), Value::from(count)])
                })),
            ),
            ("registers", Value::from(self.registers)),
            (
                "latencies",
                Value::object([
                    ("alu", Value::from(self.latencies.alu)),
                    ("mul", Value::from(self.latencies.mul)),
                    ("div", Value::from(self.latencies.div)),
                    ("load", Value::from(self.latencies.load)),
                    ("store", Value::from(self.latencies.store)),
                    ("branch", Value::from(self.latencies.branch)),
                ]),
            ),
            ("pipelined", Value::from(self.pipelined)),
        ])
    }

    /// Parses a machine description from JSON. The `pipelined` field is
    /// optional (defaults to `false`) so descriptions written before
    /// the §6 extension still parse.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for malformed JSON or a structurally
    /// invalid description (unknown class names, missing fields, zero
    /// functional units or registers).
    pub fn from_json(json: &str) -> Result<Machine, ParseError> {
        let doc = ursa_json::parse(json)?;
        Machine::from_json_value(&doc)
    }

    /// Parses a machine description from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] for structurally invalid descriptions.
    pub fn from_json_value(doc: &Value) -> Result<Machine, ParseError> {
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| ParseError::invalid(format!("missing field `{key}`")))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| ParseError::invalid("`name` must be a string"))?
            .to_owned();
        let fus_raw = field("fus")?
            .as_array()
            .ok_or_else(|| ParseError::invalid("`fus` must be an array"))?;
        let mut fus = Vec::with_capacity(fus_raw.len());
        for pair in fus_raw {
            let items = pair
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| ParseError::invalid("`fus` entries must be [class, count]"))?;
            let class_name = items[0]
                .as_str()
                .ok_or_else(|| ParseError::invalid("functional-unit class must be a string"))?;
            let class = FuClass::from_wire_name(class_name).ok_or_else(|| {
                ParseError::invalid(format!("unknown functional-unit class `{class_name}`"))
            })?;
            let count = u32_field(&items[1], "functional-unit count")?;
            fus.push((class, count));
        }
        if fus.iter().map(|&(_, n)| n).sum::<u32>() == 0 {
            return Err(ParseError::invalid(
                "a machine needs at least one functional unit",
            ));
        }
        let registers = u32_field(field("registers")?, "`registers`")?;
        if registers == 0 {
            return Err(ParseError::invalid("a machine needs at least one register"));
        }
        let lat = field("latencies")?;
        let latency = |key: &str| {
            lat.get(key)
                .ok_or_else(|| ParseError::invalid(format!("missing latency `{key}`")))?
                .as_u64()
                .ok_or_else(|| ParseError::invalid(format!("latency `{key}` must be an integer")))
        };
        let latencies = LatencyModel {
            alu: latency("alu")?,
            mul: latency("mul")?,
            div: latency("div")?,
            load: latency("load")?,
            store: latency("store")?,
            branch: latency("branch")?,
        };
        let pipelined = match doc.get("pipelined") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ParseError::invalid("`pipelined` must be a boolean"))?,
        };
        Ok(Machine {
            name,
            fus,
            registers,
            latencies,
            pipelined,
        })
    }

    /// A pipelined variant of [`Machine::classic_vliw`].
    pub fn pipelined_vliw() -> Machine {
        MachineBuilder::new("pipelined-vliw")
            .fu(FuClass::Alu, 4)
            .fu(FuClass::Mul, 2)
            .fu(FuClass::Div, 1)
            .fu(FuClass::Mem, 2)
            .fu(FuClass::Branch, 1)
            .registers(16)
            .latencies(LatencyModel::classic())
            .pipelined(true)
            .build()
    }

    /// Latency of a concrete IR instruction.
    pub fn instr_latency(&self, instr: &ursa_ir::instr::Instr) -> u64 {
        self.latencies.of(OpKind::of_instr(instr))
    }

    /// The functional-unit class executing `kind` on this machine.
    pub fn class_of(&self, kind: OpKind) -> FuClass {
        if !self.is_classed() {
            return FuClass::Universal;
        }
        match kind {
            OpKind::Alu => FuClass::Alu,
            OpKind::Mul => FuClass::Mul,
            OpKind::Div => FuClass::Div,
            OpKind::Load | OpKind::Store => FuClass::Mem,
            OpKind::Branch => FuClass::Branch,
        }
    }

    /// The functional-unit class executing a concrete IR instruction.
    pub fn instr_class(&self, instr: &ursa_ir::instr::Instr) -> FuClass {
        self.class_of(OpKind::of_instr(instr))
    }
}

fn u32_field(v: &Value, what: &str) -> Result<u32, ParseError> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| ParseError::invalid(format!("{what} must be a u32")))
}

/// Why a machine description failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The input was not valid JSON.
    Json(ursa_json::Error),
    /// The JSON was well-formed but not a valid machine description.
    Invalid(String),
}

impl ParseError {
    fn invalid(message: impl Into<String>) -> ParseError {
        ParseError::Invalid(message.into())
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Json(e) => write!(f, "malformed machine JSON: {e}"),
            ParseError::Invalid(m) => write!(f, "invalid machine description: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ursa_json::Error> for ParseError {
    fn from(e: ursa_json::Error) -> ParseError {
        ParseError::Json(e)
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (", self.name)?;
        for (i, (c, n)) in self.fus.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}×{c}")?;
        }
        write!(f, ", {} regs)", self.registers)
    }
}

/// Incremental construction of a classed [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineBuilder {
    name: String,
    fus: Vec<(FuClass, u32)>,
    registers: u32,
    latencies: LatencyModel,
    pipelined: bool,
}

impl MachineBuilder {
    /// Starts a builder with no functional units and 16 registers.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            fus: Vec::new(),
            registers: 16,
            latencies: LatencyModel::unit(),
            pipelined: false,
        }
    }

    /// Adds `count` units of `class` (replaces an earlier entry for the
    /// same class; a zero count removes the class).
    pub fn fu(mut self, class: FuClass, count: u32) -> Self {
        self.fus.retain(|&(c, _)| c != class);
        if count > 0 {
            self.fus.push((class, count));
        }
        self
    }

    /// Sets the register count.
    pub fn registers(mut self, registers: u32) -> Self {
        self.registers = registers;
        self
    }

    /// Sets the latency model.
    pub fn latencies(mut self, latencies: LatencyModel) -> Self {
        self.latencies = latencies;
        self
    }

    /// Makes the functional units pipelined (issue every cycle; results
    /// arrive after the latency) — the paper's §6 superscalar extension.
    pub fn pipelined(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Finalizes the machine.
    ///
    /// # Panics
    ///
    /// Panics if no functional units were declared or registers is zero.
    pub fn build(self) -> Machine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MachineBuilder::build`]: an empty unit list or zero
    /// registers becomes [`ParseError::Invalid`] instead of a panic.
    pub fn try_build(self) -> Result<Machine, ParseError> {
        if self.fus.is_empty() {
            return Err(ParseError::Invalid(
                "a machine needs at least one functional unit".into(),
            ));
        }
        if self.registers == 0 {
            return Err(ParseError::Invalid(
                "a machine needs at least one register".into(),
            ));
        }
        Ok(Machine {
            name: self.name,
            fus: self.fus,
            registers: self.registers,
            latencies: self.latencies,
            pipelined: self.pipelined,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::instr::{BinOp, Instr};
    use ursa_ir::value::{MemRef, Operand, SymbolId, VirtualReg};

    fn mul_instr() -> Instr {
        Instr::Bin {
            op: BinOp::Mul,
            dst: VirtualReg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        }
    }

    #[test]
    fn homogeneous_machine_shape() {
        let m = Machine::homogeneous(3, 5);
        assert!(!m.is_classed());
        assert_eq!(m.fu_count(FuClass::Universal), 3);
        assert_eq!(m.fu_count(FuClass::Alu), 0);
        assert_eq!(m.registers(), 5);
        assert_eq!(m.instr_latency(&mul_instr()), 1);
        assert_eq!(m.instr_class(&mul_instr()), FuClass::Universal);
    }

    #[test]
    #[should_panic(expected = "at least one functional unit")]
    fn zero_fus_rejected() {
        Machine::homogeneous(0, 4);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert!(matches!(
            Machine::try_homogeneous(0, 4),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            Machine::try_homogeneous(2, 0),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            Machine::homogeneous(2, 4).try_with_registers(0),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            Machine::builder("empty").registers(4).try_build(),
            Err(ParseError::Invalid(_))
        ));
        assert!(Machine::try_homogeneous(2, 4).is_ok());
        assert!(Machine::builder("ok")
            .fu(FuClass::Universal, 1)
            .registers(1)
            .try_build()
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_registers_rejected() {
        Machine::homogeneous(4, 0);
    }

    #[test]
    fn classed_machine_routes_ops() {
        let m = Machine::classic_vliw();
        assert!(m.is_classed());
        assert_eq!(m.instr_class(&mul_instr()), FuClass::Mul);
        assert_eq!(m.instr_latency(&mul_instr()), 3);
        let load = Instr::Load {
            dst: VirtualReg(0),
            mem: MemRef::new(SymbolId(0), 0i64),
        };
        assert_eq!(m.instr_class(&load), FuClass::Mem);
        assert_eq!(m.instr_latency(&load), 2);
        assert_eq!(m.total_fus(), 10);
    }

    #[test]
    fn op_kind_classification() {
        use ursa_ir::instr::UnOp;
        assert_eq!(
            OpKind::of_instr(&Instr::Const {
                dst: VirtualReg(0),
                value: 3
            }),
            OpKind::Alu
        );
        assert_eq!(
            OpKind::of_instr(&Instr::Un {
                op: UnOp::Neg,
                dst: VirtualReg(0),
                a: Operand::Imm(1)
            }),
            OpKind::Alu
        );
        let div = Instr::Bin {
            op: BinOp::Div,
            dst: VirtualReg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert_eq!(OpKind::of_instr(&div), OpKind::Div);
        let store = Instr::Store {
            mem: MemRef::new(SymbolId(0), 0i64),
            src: Operand::Imm(0),
        };
        assert_eq!(OpKind::of_instr(&store), OpKind::Store);
    }

    #[test]
    fn builder_replaces_class_entries() {
        let m = Machine::builder("t")
            .fu(FuClass::Alu, 2)
            .fu(FuClass::Alu, 3)
            .registers(4)
            .build();
        assert_eq!(m.fu_count(FuClass::Alu), 3);
        assert_eq!(m.total_fus(), 3);
    }

    #[test]
    fn builder_zero_count_removes_class() {
        let m = Machine::builder("t")
            .fu(FuClass::Alu, 2)
            .fu(FuClass::Mul, 1)
            .fu(FuClass::Mul, 0)
            .build();
        assert_eq!(m.fu_count(FuClass::Mul), 0);
        assert_eq!(m.fu_classes().len(), 1);
    }

    #[test]
    fn with_registers_sweeps() {
        let m = Machine::homogeneous(4, 16);
        let m8 = m.with_registers(8);
        assert_eq!(m8.registers(), 8);
        assert_eq!(m.registers(), 16, "original untouched");
        assert_ne!(m8.name(), m.name());
    }

    #[test]
    fn latency_models() {
        let u = LatencyModel::unit();
        assert!(OpKind::of_instr(&mul_instr()) == OpKind::Mul);
        assert_eq!(u.of(OpKind::Div), 1);
        let c = LatencyModel::classic();
        assert_eq!(c.of(OpKind::Div), 10);
        assert_eq!(c.of(OpKind::Load), 2);
    }

    #[test]
    fn json_round_trip() {
        for m in [
            Machine::classic_vliw(),
            Machine::homogeneous(4, 16),
            Machine::pipelined_vliw(),
        ] {
            let back = Machine::from_json(&m.to_json()).unwrap();
            assert_eq!(m, back);
        }
    }

    #[test]
    fn json_helpers_round_trip() {
        let m = Machine::pipelined_vliw();
        let back = Machine::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        assert!(back.is_pipelined());
        assert!(Machine::from_json("not json").is_err());
    }

    #[test]
    fn json_wire_format_is_stable() {
        let json = Machine::classic_vliw().to_json();
        assert!(json.contains("\"fus\""), "{json}");
        assert!(json.contains("[\n      \"Alu\",\n      4\n    ]"), "{json}");
        assert!(json.contains("\"registers\": 16"), "{json}");
        assert!(json.contains("\"div\": 10"), "{json}");
    }

    #[test]
    fn json_missing_pipelined_defaults_false() {
        let json = r#"{"name":"old","fus":[["Universal",2]],"registers":4,
            "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#;
        let m = Machine::from_json(json).unwrap();
        assert!(!m.is_pipelined());
        assert_eq!(m.fu_count(FuClass::Universal), 2);
    }

    #[test]
    fn json_rejects_invalid_descriptions() {
        let errs = [
            r#"{"fus":[["Universal",2]],"registers":4,
                "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#,
            r#"{"name":"m","fus":[["Quantum",2]],"registers":4,
                "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#,
            r#"{"name":"m","fus":[["Universal",0]],"registers":4,
                "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#,
            r#"{"name":"m","fus":[["Universal",2]],"registers":0,
                "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#,
            r#"{"name":"m","fus":[["Universal",2]],"registers":4,
                "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1}}"#,
            r#"{"name":"m","fus":[["Universal",2]],"registers":4,
                "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1},
                "pipelined":"yes"}"#,
        ];
        for json in errs {
            let r = Machine::from_json(json);
            assert!(r.is_err(), "accepted: {json}");
            assert!(
                matches!(r, Err(ParseError::Invalid(_))),
                "wrong error for {json}"
            );
        }
    }

    #[test]
    fn display_mentions_units_and_registers() {
        let m = Machine::classic_vliw();
        let s = m.to_string();
        assert!(s.contains("4×alu"));
        assert!(s.contains("16 regs"));
    }
}
