//! End-to-end reproduction of the paper's figures through the public
//! API (experiments F2 and F3a–d in DESIGN.md).

use ursa::core::{
    allocate, find_excessive, measure, AllocCtx, MeasureOptions, ResourceKind, UrsaConfig,
};
use ursa::ir::ddg::DependenceDag;
use ursa::machine::{FuClass, Machine};
use ursa::workloads::paper::{expected, figure2_block, figure2_letter};

fn fig2_requirement(machine: &Machine, kind: ResourceKind) -> u32 {
    let ddg = DependenceDag::from_entry_block(&figure2_block());
    let mut ctx = AllocCtx::new(ddg, machine);
    let m = measure(&mut ctx, MeasureOptions::default());
    m.of(kind).expect("resource measured").requirement.required
}

#[test]
fn f2_fu_requirement_is_four() {
    let machine = Machine::homogeneous(8, 16);
    assert_eq!(
        fig2_requirement(&machine, ResourceKind::Fu(FuClass::Universal)),
        expected::FU_REQUIREMENT
    );
}

#[test]
fn f2_register_requirement_is_five() {
    let machine = Machine::homogeneous(8, 16);
    assert_eq!(
        fig2_requirement(&machine, ResourceKind::Registers),
        expected::REG_REQUIREMENT
    );
}

#[test]
fn f2_critical_path_is_five() {
    let machine = Machine::homogeneous(8, 16);
    let ddg = DependenceDag::from_entry_block(&figure2_block());
    let ctx = AllocCtx::new(ddg, &machine);
    assert_eq!(ctx.critical_path(), expected::CRITICAL_PATH);
}

#[test]
fn f2_excessive_chain_set_at_three_fus() {
    let machine = Machine::homogeneous(3, 16);
    let ddg = DependenceDag::from_entry_block(&figure2_block());
    let mut ctx = AllocCtx::new(ddg, &machine);
    let m = measure(&mut ctx, MeasureOptions::default());
    let fu = m
        .of(ResourceKind::Fu(FuClass::Universal))
        .expect("measured")
        .clone();
    let ex = find_excessive(&mut ctx, &fu, &m.kills).expect("4 > 3");
    let mut sets: Vec<String> = ex
        .chains
        .iter()
        .map(|c| c.iter().map(|&n| figure2_letter(n)).collect::<String>())
        .collect();
    sets.sort();
    // {B,E},{C,F} and {B,F},{C,E} are symmetric minimal pairings.
    assert!(
        sets == ["BE", "CF", "G", "H"] || sets == ["BF", "CE", "G", "H"],
        "paper §3.1: {sets:?}"
    );
}

fn allocate_on(fus: u32, regs: u32) -> ursa::core::AllocationOutcome {
    allocate(
        DependenceDag::from_entry_block(&figure2_block()),
        &Machine::homogeneous(fus, regs),
        &UrsaConfig::default(),
    )
}

#[test]
fn f3a_fu_sequentialization_reaches_three() {
    let out = allocate_on(3, 16);
    assert_eq!(out.residual_excess, 0);
    let fu = out
        .final_measurement
        .of(ResourceKind::Fu(FuClass::Universal))
        .expect("fu");
    assert_eq!(fu.required, 3, "paper Figure 3(a): 4 -> 3");
    assert_eq!(out.spill_count(), 0, "pure sequencing suffices");
}

#[test]
fn f3b_register_sequencing_reaches_four() {
    let out = allocate_on(8, 4);
    assert_eq!(out.residual_excess, 0);
    let regs = out
        .final_measurement
        .of(ResourceKind::Registers)
        .expect("regs");
    assert_eq!(regs.required, 4, "paper Figure 3(b): 5 -> 4");
    assert_eq!(out.spill_count(), 0, "sequencing without spills");
}

#[test]
fn f3c_spilling_reaches_three_registers() {
    let out = allocate_on(8, 3);
    assert_eq!(out.residual_excess, 0);
    let regs = out
        .final_measurement
        .of(ResourceKind::Registers)
        .expect("regs");
    assert!(regs.required <= 3, "paper Figure 3(c): 5 -> 3");
    assert!(
        out.spill_count() >= 1,
        "a value is spilled (the paper spills D)"
    );
}

#[test]
fn f3c_spills_node_d() {
    // The only producer feeding the delayed sub-DAG {G, H} from outside
    // is D — the paper's victim.
    let out = allocate_on(8, 3);
    let spill_step = out
        .steps
        .iter()
        .find(|s| s.spills > 0)
        .expect("a spill step exists");
    assert_eq!(spill_step.spills, 1, "exactly one value (D) is parked");
}

#[test]
fn f3d_combined_two_fus_three_registers() {
    let out = allocate_on(2, 3);
    assert_eq!(out.residual_excess, 0, "steps: {:?}", out.steps);
    let fu = out
        .final_measurement
        .of(ResourceKind::Fu(FuClass::Universal))
        .expect("fu");
    let regs = out
        .final_measurement
        .of(ResourceKind::Registers)
        .expect("regs");
    assert!(fu.required <= 2, "paper Figure 3(d): 2 FUs");
    assert!(regs.required <= 3, "paper Figure 3(d): 3 registers");
}

#[test]
fn figure1_loop_terminates_on_all_machine_shapes() {
    // The top-level while-loop of Figure 1 must terminate for any
    // machine, including the degenerate 1-FU/3-reg case.
    for (fus, regs) in [(1u32, 3u32), (1, 16), (8, 3), (2, 2)] {
        let out = allocate_on(fus, regs);
        assert!(
            !out.hit_iteration_limit,
            "({fus},{regs}) hit the iteration limit: {:?}",
            out.steps
        );
    }
}
