//! Property-based tests over random programs: the measurement bound,
//! compilation correctness and graph invariants must hold for *any*
//! straight-line block, not just the curated suite.

// The proptest dependency is unavailable in hermetic builds; this whole
// suite only compiles under `--features proptest` after the crate is
// added back (see CONTRIBUTING.md "Hermetic builds").
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::HashMap;
use ursa::core::{allocate, measure, AllocCtx, MeasureOptions, ResourceKind, UrsaConfig};
use ursa::ir::ddg::DependenceDag;
use ursa::machine::Machine;
use ursa::sched::{compile_entry_block, list_schedule, schedule_pressure, CompileStrategy};
use ursa::vm::equiv::{check_equivalence, seeded_memory};
use ursa_workloads::random::{random_block, RandomShape};

fn arb_shape() -> impl Strategy<Value = RandomShape> {
    (6usize..28, 1usize..6, 1usize..12, 0u32..40).prop_map(|(ops, seeds, window, store_pct)| {
        RandomShape {
            ops,
            seeds,
            window,
            store_pct,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The worst-case measurement dominates the pressure of concrete
    /// schedules *almost always* — the paper's `Kill()` is a heuristic
    /// (Theorem 2: the exact choice is NP-complete), and when a value
    /// has several independent maximal uses the chosen killer may not
    /// be the one a particular schedule runs last, slightly
    /// under-estimating. The paper's §2 assigns exactly those leftovers
    /// to the assignment phase; so the property is: either the bound
    /// dominates, or the full pipeline still produces correct code that
    /// fits the machine via its assignment-phase fallback.
    #[test]
    fn measurement_bounds_concrete_pressure(seed in 0u64..1_000, shape in arb_shape()) {
        let program = random_block(seed, shape);
        let machine = Machine::homogeneous(4, 64);
        let ddg = DependenceDag::from_entry_block(&program);
        let schedule = list_schedule(&ddg, &machine);
        let concrete = schedule_pressure(&ddg, &schedule, &machine);
        let mut ctx = AllocCtx::new(ddg, &machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        let bound = m.of(ResourceKind::Registers).expect("regs").requirement.required;
        if concrete > bound {
            // The Kill() heuristic under-measured; §2's escape hatch
            // must still deliver correct, in-budget code.
            let tight = Machine::homogeneous(4, bound.max(3));
            let compiled = compile_entry_block(
                &program,
                &tight,
                CompileStrategy::Ursa(UrsaConfig::default()),
            );
            let memory = seeded_memory(&program, 64, seed);
            let r = check_equivalence(&program, &compiled.vliw, &tight, &memory, &HashMap::new());
            prop_assert!(r.is_ok(), "fallback failed: {:?}", r.err());
            // The gap is small (one schedule-dependent killer), never wild.
            prop_assert!(concrete <= bound + 2, "gap too large: {concrete} vs {bound}");
        }
    }

    /// Allocation converges and its result validates: acyclic DAG,
    /// single root/leaf, no iteration-limit abort.
    #[test]
    fn allocation_invariants(seed in 0u64..1_000, shape in arb_shape()) {
        let program = random_block(seed, shape);
        let machine = Machine::homogeneous(2, 4);
        let ddg = DependenceDag::from_entry_block(&program);
        let out = allocate(ddg, &machine, &UrsaConfig::default());
        prop_assert!(!out.hit_iteration_limit);
        prop_assert!(out.ddg.dag().is_acyclic());
        prop_assert_eq!(out.ddg.dag().roots(), vec![out.ddg.entry()]);
        prop_assert_eq!(out.ddg.dag().leaves(), vec![out.ddg.exit()]);
    }

    /// Compiled code is always equivalent to the sequential reference,
    /// for URSA and the postpass baseline.
    #[test]
    fn compiled_code_is_equivalent(seed in 0u64..1_000, shape in arb_shape()) {
        let program = random_block(seed, shape);
        let machine = Machine::homogeneous(3, 4);
        let memory = seeded_memory(&program, 64, seed);
        for strategy in [
            CompileStrategy::Ursa(UrsaConfig::default()),
            CompileStrategy::Postpass,
        ] {
            let name = strategy.name();
            let compiled = compile_entry_block(&program, &machine, strategy);
            let r = check_equivalence(&program, &compiled.vliw, &machine, &memory, &HashMap::new());
            prop_assert!(r.is_ok(), "{}: {:?}", name, r.err());
        }
    }

    /// The schedule produced for the transformed DAG respects the
    /// machine: validated structurally against deps, latencies, units.
    #[test]
    fn schedules_validate(seed in 0u64..1_000, shape in arb_shape()) {
        let program = random_block(seed, shape);
        let machine = Machine::classic_vliw();
        let ddg = DependenceDag::from_entry_block(&program);
        let out = allocate(ddg, &machine, &UrsaConfig::default());
        let s = list_schedule(&out.ddg, &machine);
        prop_assert!(s.validate(&out.ddg, &machine).is_ok());
    }

    /// The quality certificates are genuine lower bounds: for any
    /// random block, on machines from scalar to wide, no
    /// pipeline-produced schedule ever beats `length_bound()` — the
    /// contract `U0301` (and the exact-solver pruning of ROADMAP
    /// item 3) is built on.
    #[test]
    fn bounds_never_exceed_achieved_length(seed in 0u64..1_000, shape in arb_shape()) {
        use ursa::core::schedule_bounds;
        let program = random_block(seed, shape);
        let ddg = DependenceDag::from_entry_block(&program);
        for machine in [
            Machine::homogeneous(1, 8),
            Machine::homogeneous(2, 4),
            Machine::homogeneous(4, 16),
            Machine::classic_vliw(),
        ] {
            let bounds = schedule_bounds(&ddg, &machine);
            for strategy in [
                CompileStrategy::Ursa(UrsaConfig::default()),
                CompileStrategy::Postpass,
            ] {
                let name = strategy.name();
                let compiled = compile_entry_block(&program, &machine, strategy);
                prop_assert!(
                    bounds.length_bound() <= compiled.stats.schedule_length,
                    "[{} on {}] bound {} exceeds achieved {}",
                    name,
                    machine,
                    bounds.length_bound(),
                    compiled.stats.schedule_length,
                );
            }
        }
    }
}
