//! Golden tests over the shipped example programs: the parser, trace
//! and unit selection, and the whole-program driver must keep agreeing
//! on `examples/data/*.tac`.

use std::collections::HashMap;
use ursa::ir::parse;
use ursa::ir::program::Program;
use ursa::ir::trace::{select_traces, select_units};
use ursa::machine::Machine;
use ursa::sched::{try_compile_program, CompileStrategy, PipelineOptions};
use ursa::vm::equiv::seeded_memory;
use ursa::vm::program::{check_program_equivalence, run_program};
use ursa::vm::Memory;

fn example(name: &str) -> Program {
    let path = format!("{}/examples/data/{name}", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&source).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn strategies() -> Vec<CompileStrategy> {
    vec![
        CompileStrategy::Ursa(Default::default()),
        CompileStrategy::Postpass,
        CompileStrategy::Prepass,
        CompileStrategy::GoodmanHsu,
    ]
}

#[test]
fn hydro_parses_to_one_block_of_twelve_instructions() {
    let p = example("hydro.tac");
    assert_eq!(p.blocks.len(), 1);
    assert_eq!(p.blocks[0].instrs.len(), 12);
    assert_eq!(p.symbols, vec!["z", "y", "x"]);
}

#[test]
fn loop_parses_to_the_documented_cfg() {
    let p = example("loop.tac");
    let labels: Vec<&str> = p.blocks.iter().map(|b| b.label.as_str()).collect();
    assert_eq!(labels, vec!["entry", "head", "done"]);
    assert_eq!(p.blocks[1].weight, 24.0, "head block carries its weight");
    assert_eq!(p.symbols, vec!["a", "b"]);
    assert_eq!(p.successors(1), vec![1, 2], "head branches to itself/done");
}

#[test]
fn traces_cover_every_block_exactly_once() {
    for name in ["hydro.tac", "loop.tac"] {
        let p = example(name);
        for (what, traces) in [
            ("select_traces", select_traces(&p)),
            ("select_units", select_units(&p)),
        ] {
            let mut seen = vec![0usize; p.blocks.len()];
            for t in &traces {
                for &b in &t.blocks {
                    seen[b] += 1;
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "{name}/{what}: cover counts {seen:?}"
            );
        }
    }
}

#[test]
fn hottest_path_forms_the_main_trace() {
    let p = example("loop.tac");
    let traces = select_traces(&p);
    assert!(
        traces[0].blocks.contains(&1),
        "the weight-24 loop head must anchor the first trace, got {:?}",
        traces[0].blocks
    );
    // Unit selection grows the loop head into its straight-line
    // successor, and the entry block ends up alone.
    let units = select_units(&p);
    let blocks: Vec<&[usize]> = units.iter().map(|u| u.blocks.as_slice()).collect();
    assert_eq!(blocks, vec![&[1, 2][..], &[0][..]]);
}

#[test]
fn hydro_compiles_whole_program_on_every_strategy() {
    let p = example("hydro.tac");
    let machine = Machine::homogeneous(4, 8);
    for strategy in strategies() {
        let name = strategy.name();
        let sched = try_compile_program(&p, &machine, strategy, &PipelineOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let memory = seeded_memory(&p, 16, 11);
        check_program_equivalence(&p, &sched, &machine, &memory, &HashMap::new())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn loop_computes_b_equals_three_a_on_every_strategy() {
    let p = example("loop.tac");
    let machine = Machine::homogeneous(4, 8);
    for strategy in strategies() {
        let name = strategy.name();
        let sched = try_compile_program(&p, &machine, strategy, &PipelineOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut memory = Memory::new();
        let a = ursa::ir::value::SymbolId(0);
        let b = ursa::ir::value::SymbolId(1);
        for i in 0..24 {
            memory.store(a, i, 10 * i + 1);
        }
        let r = run_program(&sched, &machine, &memory, &HashMap::new(), 10_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for i in 0..24 {
            assert_eq!(r.memory.load(b, i), 3 * (10 * i + 1), "{name}: b[{i}]");
        }
        check_program_equivalence(&p, &sched, &machine, &memory, &HashMap::new())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
