//! Multi-block trace compilation: URSA operates on traces (paper §2),
//! so dependence construction, allocation and code generation must
//! handle on-trace branches, off-trace liveness and speculation.

use ursa::core::{allocate, measure, AllocCtx, MeasureOptions, UrsaConfig};
use ursa::ir::ddg::{DdgOptions, DependenceDag, NodeKind};
use ursa::ir::parser::parse;
use ursa::ir::trace::{select_traces, Trace};
use ursa::machine::Machine;
use ursa::sched::{compile, list_schedule, CompileStrategy};

const TWO_BLOCK: &str = "\
block entry:
v0 = load a[0]
v1 = mul v0, 2
v2 = mul v0, 3
v3 = add v1, v2
br v3, hot, cold
block hot @ 0.9:
v4 = mul v3, v1
v5 = add v4, v2
store b[0], v5
ret
block cold @ 0.1:
store b[1], v0
ret
";

fn main_trace() -> (ursa::ir::Program, Trace) {
    let p = parse(TWO_BLOCK).unwrap();
    let traces = select_traces(&p);
    assert_eq!(traces[0].blocks, vec![0, 1], "entry→hot is the main trace");
    (p, traces[0].clone())
}

#[test]
fn branch_node_is_measured_as_an_fu_consumer() {
    let (p, trace) = main_trace();
    let ddg = DependenceDag::build(&p, &trace);
    let branches = ddg
        .dag()
        .nodes()
        .filter(|&n| matches!(ddg.kind(n), NodeKind::Branch { .. }))
        .count();
    assert_eq!(branches, 1);
    // 7 instructions + 1 branch need FUs.
    assert_eq!(ddg.fu_nodes().count(), 8);
}

#[test]
fn off_trace_live_value_pins_to_branch() {
    let (p, trace) = main_trace();
    let ddg = DependenceDag::build(&p, &trace);
    let branch = ddg
        .dag()
        .nodes()
        .find(|&n| matches!(ddg.kind(n), NodeKind::Branch { .. }))
        .unwrap();
    // v0 is stored by the cold block: it must be computed before the
    // branch and the branch is one of its kill candidates.
    let v0 = ddg
        .dag()
        .nodes()
        .find(|&n| ddg.value_def(n) == Some(ursa::ir::VirtualReg(0)))
        .unwrap();
    assert!(ddg.uses_of(v0).contains(&branch));
    let reach = ursa::graph::reach::Reachability::of(ddg.dag());
    assert!(reach.reaches(v0, branch));
}

#[test]
fn trace_allocation_fits_and_schedules() {
    let (p, trace) = main_trace();
    for (fus, regs) in [(2u32, 3u32), (1, 4), (4, 8)] {
        let machine = Machine::homogeneous(fus, regs);
        let ddg = DependenceDag::build(&p, &trace);
        let out = allocate(ddg, &machine, &UrsaConfig::default());
        assert_eq!(out.residual_excess, 0, "({fus},{regs}): {:?}", out.steps);
        let s = list_schedule(&out.ddg, &machine);
        s.validate(&out.ddg, &machine)
            .unwrap_or_else(|e| panic!("({fus},{regs}): {e}"));
    }
}

#[test]
fn compiled_trace_contains_branch_slot() {
    use ursa::sched::SlotOp;
    let (p, trace) = main_trace();
    let machine = Machine::homogeneous(2, 4);
    let c = compile(
        &p,
        &trace,
        &machine,
        CompileStrategy::Ursa(UrsaConfig::default()),
    );
    let has_branch = c
        .vliw
        .words
        .iter()
        .flatten()
        .any(|op| matches!(op.op, SlotOp::Branch { .. }));
    assert!(has_branch, "the on-trace branch is emitted");
}

#[test]
fn speculative_load_measurement_differs_from_pinned() {
    // A load in the second block: speculation lets it float above the
    // branch and raises worst-case parallelism.
    let src = "\
block entry:
v0 = load a[0]
br v0, next, out
block next:
v1 = load a[1]
v2 = load a[2]
v3 = add v1, v2
store b[0], v3
ret
block out:
ret
";
    let p = parse(src).unwrap();
    let trace = Trace { blocks: vec![0, 1] };
    let machine = Machine::homogeneous(8, 16);
    let spec = DependenceDag::build(&p, &trace);
    let pinned = DependenceDag::build_with(
        &p,
        &trace,
        DdgOptions {
            speculative_loads: false,
            ..DdgOptions::default()
        },
    );
    let req = |ddg: DependenceDag| {
        let mut ctx = AllocCtx::new(ddg, &machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        m.of(ursa::core::ResourceKind::Fu(
            ursa::machine::FuClass::Universal,
        ))
        .unwrap()
        .requirement
        .required
    };
    let spec_req = req(spec);
    let pinned_req = req(pinned);
    assert!(
        spec_req > pinned_req,
        "speculation exposes parallelism: {spec_req} vs {pinned_req}"
    );
}

#[test]
fn every_block_lands_in_exactly_one_trace() {
    let p = parse(TWO_BLOCK).unwrap();
    let traces = select_traces(&p);
    let mut covered: Vec<usize> = traces.iter().flat_map(|t| t.blocks.clone()).collect();
    covered.sort_unstable();
    assert_eq!(covered, vec![0, 1, 2]);
}
