//! The §6 superscalar extension: pipelined functional units accept a new
//! operation every cycle while results are still in flight. The
//! measurement is unchanged (worst-case simultaneous issue is still the
//! maximum antichain), but schedules tighten and the simulator honors
//! the single-cycle occupancy.

use std::collections::HashMap;
use ursa::ir::ddg::DependenceDag;
use ursa::ir::parser::parse;
use ursa::machine::{FuClass, LatencyModel, Machine};
use ursa::sched::{compile_entry_block, list_schedule, CompileStrategy};
use ursa::vm::equiv::{check_equivalence, seeded_memory};
use ursa::workloads::kernel_suite;

fn pipelined(fus: u32, regs: u32) -> Machine {
    Machine::builder("pipe")
        .fu(FuClass::Universal, fus)
        .registers(regs)
        .latencies(LatencyModel::classic())
        .pipelined(true)
        .build()
}

fn nonpipelined(fus: u32, regs: u32) -> Machine {
    Machine::builder("nopipe")
        .fu(FuClass::Universal, fus)
        .registers(regs)
        .latencies(LatencyModel::classic())
        .build()
}

#[test]
fn pipelining_never_lengthens_schedules() {
    // Independent multiplies on one unit: pipelined issues one per
    // cycle, non-pipelined serializes by the 3-cycle latency.
    let p = parse(
        "v0 = load a[0]\n\
         v1 = mul v0, 2\n\
         v2 = mul v0, 3\n\
         v3 = mul v0, 5\n\
         v4 = mul v0, 7\n\
         store b[0], v1\n\
         store b[1], v2\n\
         store b[2], v3\n\
         store b[3], v4\n",
    )
    .unwrap();
    let ddg = DependenceDag::from_entry_block(&p);
    let slow = list_schedule(&ddg, &nonpipelined(1, 16));
    let fast = list_schedule(&ddg, &pipelined(1, 16));
    slow.validate(&ddg, &nonpipelined(1, 16)).unwrap();
    fast.validate(&ddg, &pipelined(1, 16)).unwrap();
    assert!(
        fast.length() < slow.length(),
        "pipelined {} vs non-pipelined {}",
        fast.length(),
        slow.length()
    );
}

#[test]
fn occupancy_semantics() {
    use ursa::machine::OpKind;
    let m = pipelined(2, 8);
    assert!(m.is_pipelined());
    assert_eq!(m.occupancy_of(OpKind::Mul), 1);
    assert_eq!(m.latency_of(OpKind::Mul), 3, "latency unchanged");
    let n = nonpipelined(2, 8);
    assert_eq!(n.occupancy_of(OpKind::Mul), 3);
}

#[test]
fn json_defaults_nonpipelined() {
    // Old serialized machines (without the field) stay non-pipelined.
    let json = r#"{"name":"old","fus":[["Universal",2]],"registers":4,
                   "latencies":{"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#;
    let m = Machine::from_json(json).unwrap();
    assert!(!m.is_pipelined());
}

#[test]
fn pipelined_compilation_stays_equivalent() {
    let machine = pipelined(3, 8);
    for kernel in kernel_suite() {
        for strategy in [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
        ] {
            let name = strategy.name();
            let compiled = compile_entry_block(&kernel.program, &machine, strategy);
            let exec = if compiled.vliw.num_regs > machine.registers() {
                machine.with_registers(compiled.vliw.num_regs)
            } else {
                machine.clone()
            };
            let memory = if kernel.name == "fig2" {
                let mut m = ursa::vm::Memory::new();
                m.store(ursa::ir::SymbolId(0), 0, 7);
                m
            } else {
                seeded_memory(&kernel.program, 128, 77)
            };
            check_equivalence(
                &kernel.program,
                &compiled.vliw,
                &exec,
                &memory,
                &HashMap::new(),
            )
            .unwrap_or_else(|e| panic!("{} via {name}: {e}", kernel.name));
        }
    }
}

#[test]
fn pipelined_vliw_preset() {
    let m = Machine::pipelined_vliw();
    assert!(m.is_pipelined());
    assert!(m.is_classed());
    assert_eq!(m.registers(), 16);
}
