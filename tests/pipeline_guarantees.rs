//! URSA's central guarantee, checked end-to-end: after allocation, *no
//! legal schedule* of the transformed DAG can exceed the machine, so
//! the assignment phase succeeds without touching memory again.

use ursa::core::{allocate, UrsaConfig};
use ursa::ir::ddg::DependenceDag;
use ursa::machine::Machine;
use ursa::sched::{assign_registers, list_schedule, schedule_pressure};
use ursa::workloads::kernel_suite;

#[test]
fn allocation_bounds_hold_for_concrete_schedules() {
    for kernel in kernel_suite() {
        for (fus, regs) in [(4u32, 8u32), (2, 6), (6, 12)] {
            let machine = Machine::homogeneous(fus, regs);
            let ddg = DependenceDag::from_entry_block(&kernel.program);
            let out = allocate(ddg, &machine, &UrsaConfig::default());
            if out.residual_excess > 0 {
                // Heuristic residue is allowed by the paper (§2); the
                // assignment fallback covers it. Skip the strict check.
                continue;
            }
            let schedule = list_schedule(&out.ddg, &machine);
            schedule
                .validate(&out.ddg, &machine)
                .unwrap_or_else(|e| panic!("{} ({fus},{regs}): {e}", kernel.name));
            let pressure = schedule_pressure(&out.ddg, &schedule, &machine);
            assert!(
                pressure <= regs,
                "{} ({fus},{regs}): schedule pressure {pressure} exceeds bound",
                kernel.name
            );
            assert!(
                assign_registers(&out.ddg, &schedule, &machine).is_ok(),
                "{} ({fus},{regs}): assignment failed although allocation fit",
                kernel.name
            );
        }
    }
}

#[test]
fn residual_excess_is_rare_and_bounded() {
    let mut residuals = 0usize;
    let mut total = 0usize;
    for kernel in kernel_suite() {
        for (fus, regs) in [(4u32, 8u32), (2, 6), (6, 12)] {
            let machine = Machine::homogeneous(fus, regs);
            let ddg = DependenceDag::from_entry_block(&kernel.program);
            let out = allocate(ddg, &machine, &UrsaConfig::default());
            total += 1;
            if out.residual_excess > 0 {
                residuals += 1;
            }
            assert!(!out.hit_iteration_limit, "{}", kernel.name);
        }
    }
    // The paper allows heuristic residue (§2 hands it to the assignment
    // phase); it should still be the minority case and small.
    assert!(
        residuals * 2 <= total,
        "heuristics left residue on {residuals}/{total} configurations"
    );
}

#[test]
fn transformed_dags_remain_well_formed() {
    for kernel in kernel_suite() {
        let machine = Machine::homogeneous(2, 5);
        let ddg = DependenceDag::from_entry_block(&kernel.program);
        let out = allocate(ddg, &machine, &UrsaConfig::default());
        let dag = out.ddg.dag();
        assert!(dag.is_acyclic(), "{}", kernel.name);
        assert_eq!(dag.roots(), vec![out.ddg.entry()], "{}", kernel.name);
        assert_eq!(dag.leaves(), vec![out.ddg.exit()], "{}", kernel.name);
        // Spill bookkeeping: every spilled value's reload reads a
        // register defined by a load from the spill area.
        for n in out.ddg.value_nodes() {
            for &u in out.ddg.uses_of(n) {
                assert!(
                    dag.has_edge(n, u),
                    "{}: use list of {n} mentions {u} without an edge",
                    kernel.name
                );
            }
        }
    }
}

#[test]
fn requirements_never_increase_after_allocation() {
    use ursa::core::ResourceKind;
    for kernel in kernel_suite() {
        let machine = Machine::homogeneous(4, 8);
        let ddg = DependenceDag::from_entry_block(&kernel.program);
        let out = allocate(ddg, &machine, &UrsaConfig::default());
        for req in &out.final_measurement.requirements {
            if req.resource == ResourceKind::Registers {
                let initial = out
                    .initial_measurement
                    .of(req.resource)
                    .expect("same resource set");
                // After successful allocation the requirement fits; it
                // never ends up above the initial worst case.
                assert!(
                    req.required <= initial.required.max(req.capacity),
                    "{}: {} grew from {} to {}",
                    kernel.name,
                    req.resource,
                    initial.required,
                    req.required
                );
            }
        }
    }
}
