//! Fail-safe pipeline guarantees: typed errors instead of panics, the
//! degradation ladder and its `FallbackReport`, and invariant breaks
//! surfacing as `CompileError`.

use std::collections::HashMap;
use ursa::core::{Strategy, UrsaConfig};
use ursa::ir::parser::parse;
use ursa::ir::Trace;
use ursa::machine::Machine;
use ursa::sched::{
    try_compile, try_compile_with, validate, CompileError, CompileStrategy, FallbackRung,
    PipelineOptions, RungFailure, SlotOp,
};
use ursa::vm::equiv::{check_equivalence, seeded_memory};
use ursa_rng::Rng;
use ursa_workloads::random::{random_block, RandomShape};

/// Fig. 2 of the paper — register width 5, so tight files force the
/// allocator to work.
const FIG2: &str = "\
    v0 = load a[0]\n\
    v1 = mul v0, 2\n\
    v2 = mul v0, 3\n\
    v3 = add v0, 5\n\
    v4 = add v1, v2\n\
    v5 = mul v1, v2\n\
    v6 = mul v3, 2\n\
    v7 = div v3, 3\n\
    v8 = div v4, v5\n\
    v9 = add v6, v7\n\
    v10 = add v8, v9\n\
    store b[0], v10\n";

const TWO_BLOCK: &str = "\
    block entry:\n\
    v0 = load a[0]\n\
    v1 = mul v0, 2\n\
    br v1, hot, cold\n\
    block hot @ 0.9:\n\
    store b[0], v1\n\
    ret\n\
    block cold @ 0.1:\n\
    store b[1], v0\n\
    ret\n";

/// The stress harness's program shape (keep in sync with
/// `crates/bench/src/bin/stress.rs`), so stress seeds can be promoted
/// into regressions here verbatim.
fn stress_shape(seed: u64) -> RandomShape {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5745_4544);
    RandomShape {
        ops: rng.gen_range(8usize..96),
        seeds: rng.gen_range(1usize..8),
        window: rng.gen_range(2usize..24),
        store_pct: rng.gen_range(0u32..40),
    }
}

#[test]
fn prepass_refuses_multi_block_traces() {
    // Regression: this used to be an `assert_eq!` panic inside compile.
    let p = parse(TWO_BLOCK).unwrap();
    let machine = Machine::homogeneous(2, 8);
    let err = try_compile(
        &p,
        &Trace { blocks: vec![0, 1] },
        &machine,
        CompileStrategy::Prepass,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CompileError::UnsupportedTrace {
            strategy: "prepass",
            blocks: 2,
        }
    ));
    // The refusal must route the user to the path that does handle
    // multi-block inputs.
    assert!(
        err.to_string().contains("whole-program driver"),
        "refusal should point at compile_program: {err}"
    );
}

#[test]
fn empty_program_compiles_to_nothing() {
    let p = parse("").unwrap();
    let machine = Machine::homogeneous(2, 4);
    for strategy in [
        CompileStrategy::Ursa(UrsaConfig::default()),
        CompileStrategy::Postpass,
        CompileStrategy::Prepass,
        CompileStrategy::GoodmanHsu,
    ] {
        let c = try_compile(&p, &Trace::single(0), &machine, strategy).unwrap();
        assert_eq!(c.stats.ops, 0);
    }
}

#[test]
fn out_of_range_trace_is_typed() {
    let p = parse(FIG2).unwrap();
    let machine = Machine::homogeneous(2, 8);
    let err = try_compile(&p, &Trace::single(3), &machine, CompileStrategy::Postpass).unwrap_err();
    assert!(matches!(
        err,
        CompileError::TraceOutOfRange {
            block: 3,
            blocks: 1
        }
    ));
}

#[test]
fn clean_compiles_record_their_own_rung() {
    let p = parse(FIG2).unwrap();
    let machine = Machine::homogeneous(3, 16);
    for strategy in [Strategy::Integrated, Strategy::Phased, Strategy::SpillOnly] {
        let config = UrsaConfig {
            strategy,
            ..UrsaConfig::default()
        };
        let c = try_compile(
            &p,
            &Trace::single(0),
            &machine,
            CompileStrategy::Ursa(config),
        )
        .unwrap();
        let report = c.fallback.expect("ursa records a report");
        assert!(!report.degraded(), "{strategy:?} should fit 16 registers");
        assert_eq!(report.rung, FallbackRung::Allocation(strategy));
    }
}

#[test]
fn exhausted_budget_descends_to_postpass_patch() {
    // Budget 0 on a machine that needs reduction: every allocation rung
    // reports its iteration limit and the terminal patch rung delivers.
    let p = parse(FIG2).unwrap();
    let machine = Machine::homogeneous(4, 3);
    let config = UrsaConfig {
        max_iterations: 0,
        ..UrsaConfig::default()
    };
    let c = try_compile(
        &p,
        &Trace::single(0),
        &machine,
        CompileStrategy::Ursa(config),
    )
    .unwrap();
    let report = c.fallback.unwrap();
    assert_eq!(report.rung, FallbackRung::PostpassPatch);
    assert_eq!(
        report
            .attempts
            .iter()
            .map(|&(rung, _)| rung)
            .collect::<Vec<_>>(),
        vec![
            FallbackRung::Allocation(Strategy::Integrated),
            FallbackRung::Allocation(Strategy::Phased),
            FallbackRung::Allocation(Strategy::SpillOnly),
        ],
        "ladder order"
    );
    for &(_, why) in &report.attempts {
        assert!(matches!(why, RungFailure::IterationLimit { iterations: 0 }));
    }
    // The delivered code still respects the file and computes Fig. 2.
    let memory = seeded_memory(&p, 64, 9);
    check_equivalence(&p, &c.vliw, &machine, &memory, &HashMap::new()).unwrap();
}

#[test]
fn residual_excess_descends_and_stays_correct() {
    // Promoted from the stress harness (seed 4 on vliw4r8): every
    // allocation rung converges but leaves residual excess, so the
    // patch rung compiles a spill-transformed DAG. Regression for the
    // patcher's memory-dependence retiming (a reload must wait for its
    // spill store to commit).
    let p = random_block(4, stress_shape(4));
    let machine = Machine::homogeneous(4, 8);
    let c = try_compile_with(
        &p,
        &Trace::single(0),
        &machine,
        CompileStrategy::Ursa(UrsaConfig::default()),
        &PipelineOptions {
            validate: true,
            no_fallback: false,
            ..Default::default()
        },
    )
    .unwrap();
    let report = c.fallback.unwrap();
    assert_eq!(report.rung, FallbackRung::PostpassPatch);
    assert!(report
        .attempts
        .iter()
        .all(|&(_, why)| matches!(why, RungFailure::ResidualExcess { .. })));
    let memory = seeded_memory(&p, 256, 4);
    check_equivalence(&p, &c.vliw, &machine, &memory, &HashMap::new()).unwrap();
}

#[test]
fn mid_ladder_rescue_by_spill_only() {
    // Found by seed search: on this input the integrated and phased
    // disciplines both claim success but overflow at assignment (the
    // Kill() heuristic under-measures, paper §2), and the spill-only
    // rung rescues the compile without reaching the patch rung. The
    // triggering seed is re-searched whenever allocation decisions
    // legitimately shift (the incremental-measurement PR's spill
    // scoring heuristics retired the previous seed, 95 at 2 FUs/6
    // regs).
    let p = random_block(48, stress_shape(48));
    let machine = Machine::homogeneous(2, 7);
    let c = try_compile(
        &p,
        &Trace::single(0),
        &machine,
        CompileStrategy::Ursa(UrsaConfig::default()),
    )
    .unwrap();
    let report = c.fallback.unwrap();
    assert_eq!(report.rung, FallbackRung::Allocation(Strategy::SpillOnly));
    assert_eq!(report.attempts.len(), 2, "{report}");
    assert!(report
        .attempts
        .iter()
        .all(|&(_, why)| matches!(why, RungFailure::AssignOverflow { .. })));
    let memory = seeded_memory(&p, 256, 48);
    check_equivalence(&p, &c.vliw, &machine, &memory, &HashMap::new()).unwrap();
}

#[test]
fn no_fallback_turns_exhaustion_into_budget_exhausted() {
    let p = parse(FIG2).unwrap();
    let machine = Machine::homogeneous(4, 3);
    let config = UrsaConfig {
        max_iterations: 0,
        ..UrsaConfig::default()
    };
    let err = try_compile_with(
        &p,
        &Trace::single(0),
        &machine,
        CompileStrategy::Ursa(config),
        &PipelineOptions {
            validate: false,
            no_fallback: true,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CompileError::BudgetExhausted { iterations: 0, .. }
    ));
}

#[test]
fn injected_invariant_break_is_a_typed_error() {
    // Corrupt a perfectly good compile the way a buggy stage would and
    // confirm the checker reports a typed CompileError, not a panic.
    let p = parse(FIG2).unwrap();
    let machine = Machine::homogeneous(3, 8);
    let c = try_compile(
        &p,
        &Trace::single(0),
        &machine,
        CompileStrategy::Ursa(UrsaConfig::default()),
    )
    .unwrap();
    let expected = c.stats.ops;

    // Break 1: an operation vanishes (conservation).
    let mut lost = c.vliw.clone();
    let word = lost.words.iter_mut().rev().find(|w| !w.is_empty()).unwrap();
    word.pop();
    let err = CompileError::from(validate::check_words(&lost, &machine, expected).unwrap_err());
    assert!(matches!(err, CompileError::Validation(_)), "{err}");

    // Break 2: a register outside the file (bounds).
    let mut out_of_file = c.vliw.clone();
    out_of_file.num_regs = 2;
    let err =
        CompileError::from(validate::check_words(&out_of_file, &machine, expected).unwrap_err());
    assert!(matches!(err, CompileError::Validation(_)), "{err}");
    assert!(err.to_string().contains("register"), "{err}");
}

#[test]
fn spilled_code_stays_inside_the_file() {
    // The ladder's delivered code respects the machine's register file
    // even when it had to spill hard.
    let p = parse(FIG2).unwrap();
    for regs in [3u32, 4] {
        let machine = Machine::homogeneous(4, regs);
        let c = try_compile(
            &p,
            &Trace::single(0),
            &machine,
            CompileStrategy::Ursa(UrsaConfig::default()),
        )
        .unwrap();
        for word in &c.vliw.words {
            for op in word {
                if let SlotOp::Instr(i) = &op.op {
                    for r in i.uses().into_iter().chain(i.def()) {
                        assert!(r.0 < regs, "{r} escaped the {regs}-register file");
                    }
                }
            }
        }
    }
}

#[test]
fn multi_cycle_latency_violation_is_a_bad_schedule() {
    // A schedule legal on a unit-latency machine packs dependent mul
    // chains back to back; rechecking it against the same FU shape with
    // classic multi-cycle latencies must trip the dependence check.
    let p = parse(FIG2).unwrap();
    let ddg = ursa::ir::ddg::DependenceDag::from_entry_block(&p);
    let unit = Machine::homogeneous(3, 16);
    let schedule = ursa::sched::list_schedule(&ddg, &unit);
    validate::check_schedule(&ddg, &schedule, &unit).unwrap();
    let slow = Machine::builder("slow-homogeneous")
        .fu(ursa::machine::FuClass::Universal, 3)
        .registers(16)
        .latencies(ursa::machine::LatencyModel::classic())
        .build();
    let err = validate::check_schedule(&ddg, &schedule, &slow).unwrap_err();
    assert!(
        matches!(err, ursa::sched::ValidationError::BadSchedule { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("before"), "{err}");
}

#[test]
fn register_file_bound_is_exact_at_the_cap() {
    // Index file-1 is the last legal register; index == file is the
    // first illegal one — the bound is exact, not off by one.
    use ursa::ir::instr::Instr;
    use ursa::ir::value::VirtualReg;
    use ursa::machine::FuClass;
    use ursa::sched::{MachineOp, VliwProgram};
    let machine = Machine::homogeneous(1, 4);
    let program_with_dst = |reg: u32| VliwProgram {
        words: vec![vec![MachineOp {
            op: SlotOp::Instr(Instr::Const {
                dst: VirtualReg(reg),
                value: 7,
            }),
            fu: (FuClass::Universal, 0),
        }]],
        symbols: Vec::new(),
        num_regs: machine.registers(),
        live_in: Vec::new(),
    };
    validate::check_words(&program_with_dst(3), &machine, 1).unwrap();
    let err = validate::check_words(&program_with_dst(4), &machine, 1).unwrap_err();
    assert!(
        matches!(
            err,
            ursa::sched::ValidationError::RegisterOutOfFile {
                reg: 4,
                file: 4,
                ..
            }
        ),
        "{err}"
    );
}
