//! Hand-checked arithmetic for the schedule-quality certificates
//! (`ursa::core::bounds`, DESIGN.md §11), plus the suite-wide soundness
//! sweep: a lower bound that ever exceeds an achieved schedule length
//! is not a bound.
//!
//! The exact-number tests pin the three certificates on programs small
//! enough to verify by hand: the paper's Figure 2 block (against the
//! paper's own stated measurements), a pure dependence chain (critical
//! path dominates), and a wide store fan (FU occupancy dominates).

use ursa::core::{schedule_bounds, Strategy, UrsaConfig};
use ursa::ir::ddg::DependenceDag;
use ursa::ir::parser::parse;
use ursa::ir::Trace;
use ursa::machine::{FuClass, Machine};
use ursa::sched::{try_compile, CompileStrategy};
use ursa::workloads::kernels::kernel_suite;
use ursa::workloads::paper::{expected, figure2_block};

fn ursa_strategy(strategy: Strategy) -> CompileStrategy {
    CompileStrategy::Ursa(UrsaConfig {
        strategy,
        ..UrsaConfig::default()
    })
}

/// Figure 2 against the paper's stated measurements: critical path 5,
/// register requirement 5, and — with 11 unit-latency ops — an
/// occupancy bound of ⌈11/units⌉ that overtakes the critical path
/// exactly when the machine narrows to 2 units.
#[test]
fn figure2_certificates_match_the_paper() {
    let program = figure2_block();
    let ddg = DependenceDag::from_entry_block(&program);

    let wide = schedule_bounds(&ddg, &Machine::homogeneous(4, 16));
    assert_eq!(wide.critical_path, expected::CRITICAL_PATH);
    assert_eq!(wide.registers.required, expected::REG_REQUIREMENT);
    let occ = wide
        .occupancy
        .iter()
        .find(|o| o.class == FuClass::Universal)
        .expect("homogeneous machines have a universal class");
    assert_eq!(occ.ops, 11, "figure 2 has 11 operations");
    assert_eq!(occ.busy, 11, "unit latencies: busy cycles = ops");
    assert_eq!(occ.bound(), 3, "ceil(11/4)");
    assert_eq!(wide.length_bound(), 5, "critical path dominates at 4 FUs");
    assert!(wide.registers_fit(), "5 required fits a 16-register file");

    let narrow = schedule_bounds(&ddg, &Machine::homogeneous(2, 4));
    assert_eq!(narrow.critical_path, expected::CRITICAL_PATH);
    assert_eq!(narrow.registers.required, expected::REG_REQUIREMENT);
    assert_eq!(narrow.length_bound(), 6, "ceil(11/2) overtakes the path");
    assert!(!narrow.registers_fit(), "5 required overflows 4 registers");
}

/// A pure 6-op dependence chain: the critical path is the whole
/// program and no amount of functional units helps.
#[test]
fn chain_is_critical_path_bound() {
    let src = "\
        v1 = load a[0]\n\
        v2 = add v1, 1\n\
        v3 = add v2, 1\n\
        v4 = add v3, 1\n\
        v5 = add v4, 1\n\
        store a[0], v5\n";
    let program = parse(src).unwrap();
    let ddg = DependenceDag::from_entry_block(&program);
    let bounds = schedule_bounds(&ddg, &Machine::homogeneous(8, 16));
    assert_eq!(bounds.critical_path, 6);
    assert_eq!(bounds.length_bound(), 6, "ceil(6/8) = 1 cannot dominate");
    assert_eq!(bounds.registers.required, 1, "one value alive at a time");
}

/// Eight independent load/store round-trips on a 2-unit machine: 16
/// unit-latency ops force ⌈16/2⌉ = 8 cycles although every dependence
/// chain is only 2 long.
#[test]
fn fan_is_occupancy_bound() {
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("v{i} = load a[{i}]\n"));
    }
    for i in 0..8 {
        src.push_str(&format!("store b[{i}], v{i}\n"));
    }
    let program = parse(&src).unwrap();
    let ddg = DependenceDag::from_entry_block(&program);
    let bounds = schedule_bounds(&ddg, &Machine::homogeneous(2, 16));
    assert_eq!(bounds.critical_path, 2, "load then store");
    let occ = bounds
        .occupancy
        .iter()
        .find(|o| o.class == FuClass::Universal)
        .unwrap();
    assert_eq!((occ.ops, occ.bound()), (16, 8));
    assert_eq!(bounds.length_bound(), 8, "occupancy dominates");
}

/// Latency-weighted critical path: on the pipelined machine a
/// load (latency 2) feeding a multiply (latency 3) feeding a store
/// must include the final drain, not just issue cycles.
#[test]
fn critical_path_is_latency_weighted() {
    let machine = Machine::pipelined_vliw();
    let lat = |kind| machine.latency_of(kind);
    let src = "\
        v1 = load a[0]\n\
        v2 = mul v1, 3\n\
        store a[0], v2\n";
    let program = parse(src).unwrap();
    let ddg = DependenceDag::from_entry_block(&program);
    let bounds = schedule_bounds(&ddg, &machine);
    use ursa::machine::OpKind;
    let expected = lat(OpKind::Load) + lat(OpKind::Mul) + lat(OpKind::Store);
    assert_eq!(bounds.critical_path, expected);
}

/// Soundness across the paper suite: for every kernel × strategy ×
/// machine cell that compiles, the certificate never exceeds the
/// achieved schedule length (the lower-bound contract U0301 is built
/// on). dct8 runs postpass-only — its (4,16) URSA compile is a
/// minutes-long spill search under the debug profile (the honest T8
/// gap row is recorded by the release-built experiments harness
/// instead).
#[test]
fn bounds_never_exceed_achieved_length_on_the_suite() {
    let strategies = [
        ("integrated", ursa_strategy(Strategy::Integrated)),
        ("phased", ursa_strategy(Strategy::Phased)),
        ("fu-first", ursa_strategy(Strategy::PhasedFuFirst)),
        ("spill-only", ursa_strategy(Strategy::SpillOnly)),
        ("postpass", CompileStrategy::Postpass),
    ];
    let machines = [
        Machine::homogeneous(4, 16),
        Machine::homogeneous(2, 8),
        Machine::classic_vliw(),
    ];
    let mut checked = 0usize;
    for kernel in kernel_suite() {
        let ddg = DependenceDag::from_entry_block(&kernel.program);
        for machine in &machines {
            let bounds = schedule_bounds(&ddg, machine);
            for (name, strategy) in &strategies {
                if kernel.name == "dct8" && *name != "postpass" {
                    continue;
                }
                let Ok(compiled) =
                    try_compile(&kernel.program, &Trace::entry(), machine, strategy.clone())
                else {
                    continue;
                };
                assert!(
                    bounds.length_bound() <= compiled.stats.schedule_length,
                    "[{} on {machine}, {name}] bound {} exceeds achieved {}",
                    kernel.name,
                    bounds.length_bound(),
                    compiled.stats.schedule_length,
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 80, "suite too small: {checked} cells");
}
