//! V1 — semantic equivalence: every strategy's generated VLIW code must
//! compute exactly what the sequential program computes, across the
//! kernel suite and machine shapes.

use std::collections::HashMap;
use ursa::machine::Machine;
use ursa::sched::{compile_entry_block, CompileStrategy};
use ursa::vm::equiv::{check_equivalence, seeded_memory};
use ursa::vm::Memory;
use ursa::workloads::kernel_suite;

fn memory_for(kernel_name: &str, program: &ursa::ir::Program) -> Memory {
    if kernel_name == "fig2" {
        // fig2 divides; keep the divisor benign.
        let mut m = Memory::new();
        m.store(ursa::ir::SymbolId(0), 0, 7);
        m
    } else {
        seeded_memory(program, 128, 0xDA7A)
    }
}

fn check_all(fus: u32, regs: u32) {
    for kernel in kernel_suite() {
        let machine = Machine::homogeneous(fus, regs);
        for strategy in [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ] {
            let name = strategy.name();
            let compiled = compile_entry_block(&kernel.program, &machine, strategy);
            let exec_machine = if compiled.vliw.num_regs > machine.registers() {
                machine.with_registers(compiled.vliw.num_regs)
            } else {
                machine.clone()
            };
            let memory = memory_for(&kernel.name, &kernel.program);
            check_equivalence(
                &kernel.program,
                &compiled.vliw,
                &exec_machine,
                &memory,
                &HashMap::new(),
            )
            .unwrap_or_else(|e| panic!("{} via {name} at {fus}fu/{regs}regs: {e}", kernel.name));
        }
    }
}

#[test]
fn all_strategies_equivalent_under_pressure() {
    check_all(4, 6);
}

#[test]
fn all_strategies_equivalent_with_ample_resources() {
    check_all(8, 32);
}

#[test]
fn all_strategies_equivalent_on_narrow_machine() {
    check_all(2, 8);
}

#[test]
fn classed_machine_equivalence() {
    let machine = Machine::classic_vliw();
    for kernel in kernel_suite() {
        let compiled = compile_entry_block(
            &kernel.program,
            &machine,
            CompileStrategy::Ursa(Default::default()),
        );
        let memory = memory_for(&kernel.name, &kernel.program);
        check_equivalence(
            &kernel.program,
            &compiled.vliw,
            &machine,
            &memory,
            &HashMap::new(),
        )
        .unwrap_or_else(|e| panic!("{} on classic VLIW: {e}", kernel.name));
    }
}

#[test]
fn random_blocks_equivalent_across_strategies() {
    use ursa_workloads::random::{random_block, RandomShape};
    for seed in 0..6u64 {
        let program = random_block(
            seed,
            RandomShape {
                ops: 40,
                seeds: 6,
                window: 12,
                store_pct: 25,
            },
        );
        let machine = Machine::homogeneous(3, 5);
        for strategy in [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
        ] {
            let name = strategy.name();
            let compiled = compile_entry_block(&program, &machine, strategy);
            let memory = seeded_memory(&program, 64, seed);
            check_equivalence(&program, &compiled.vliw, &machine, &memory, &HashMap::new())
                .unwrap_or_else(|e| panic!("seed {seed} via {name}: {e}"));
        }
    }
}
