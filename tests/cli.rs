//! End-to-end tests of the `ursac` binary: exit codes, error paths, and
//! the fail-safe pipeline flags.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ursac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ursac"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ursac-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

const SMALL: &str = "\
    v0 = load a[0]\n\
    v1 = mul v0, 2\n\
    v2 = add v1, v0\n\
    store a[1], v2\n";

/// Wide enough that a tight machine (`--fus 4 --regs 3`) needs real
/// transform work before any legal schedule fits.
const PRESSURE: &str = "\
    v0 = load a[0]\n\
    v1 = mul v0, 2\n\
    v2 = mul v0, 3\n\
    v3 = add v0, 5\n\
    v4 = add v1, v2\n\
    v5 = mul v1, v2\n\
    v6 = mul v3, 2\n\
    v7 = div v3, 3\n\
    v8 = div v4, v5\n\
    v9 = add v6, v7\n\
    v10 = add v8, v9\n\
    store b[0], v10\n";

#[test]
fn compiles_and_exits_zero() {
    let input = write_temp("ok.tac", SMALL);
    let out = ursac().arg(&input).output().unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# machine:"), "missing header: {stdout}");
}

#[test]
fn validate_flag_accepted_and_code_unchanged() {
    let input = write_temp("validate.tac", SMALL);
    let plain = ursac().arg(&input).output().unwrap();
    let checked = ursac().arg(&input).arg("--validate").output().unwrap();
    assert!(checked.status.success(), "{}", stderr_of(&checked));
    assert_eq!(plain.stdout, checked.stdout, "--validate altered the code");
}

#[test]
fn usage_errors_exit_two() {
    let out = ursac().arg("--bogus-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = ursac().output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no input file");
}

#[test]
fn unknown_strategy_exits_two() {
    let input = write_temp("strategy.tac", SMALL);
    let out = ursac()
        .arg(&input)
        .args(["--strategy", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unknown strategy"));
}

#[test]
fn parse_error_exits_one() {
    let input = write_temp("broken.tac", "v0 = frobnicate 1, 2\n");
    let out = ursac().arg(&input).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn zero_register_machine_is_a_typed_failure() {
    let input = write_temp("zeroreg.tac", SMALL);
    let out = ursac().arg(&input).args(["--regs", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("at least one register"));
}

#[test]
fn zero_fu_machine_is_a_typed_failure() {
    let input = write_temp("zerofu.tac", SMALL);
    let out = ursac().arg(&input).args(["--fus", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("at least one functional unit"));
}

#[test]
fn malformed_machine_json_is_a_typed_failure() {
    let input = write_temp("machine.tac", SMALL);
    let machine = write_temp("bad_machine.json", "{ not json");
    let out = ursac()
        .arg(&input)
        .args(["--machine", machine.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr_of(&out).contains("malformed machine JSON"),
        "stderr: {}",
        stderr_of(&out)
    );
}

#[test]
fn invalid_machine_description_is_a_typed_failure() {
    let input = write_temp("machine2.tac", SMALL);
    let machine = write_temp(
        "zero_machine.json",
        r#"{"name": "broken", "fus": [["Universal", 0]], "registers": 8,
            "latencies": {"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#,
    );
    let out = ursac()
        .arg(&input)
        .args(["--machine", machine.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("at least one functional unit"));
}

#[test]
fn valid_machine_json_compiles() {
    let input = write_temp("machine3.tac", SMALL);
    let machine = write_temp(
        "good_machine.json",
        r#"{"name": "json-vliw", "fus": [["Universal", 2]], "registers": 8,
            "latencies": {"alu":1,"mul":1,"div":1,"load":1,"store":1,"branch":1}}"#,
    );
    let out = ursac()
        .arg(&input)
        .args(["--machine", machine.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("json-vliw"));
}

#[test]
fn unroll_without_loop_exits_one() {
    let input = write_temp("noloop.tac", SMALL);
    let out = ursac()
        .arg(&input)
        .args(["--unroll", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("no self-loop"));
}

#[test]
fn unroll_zero_is_rejected_without_panic() {
    // A self-loop so --unroll reaches the unroller, with factor 0.
    let looped = "\
        block entry:\n\
        v0 = const 0\n\
        br v0, body, done\n\
        block body:\n\
        v1 = load a[0]\n\
        v2 = add v1, 1\n\
        store a[0], v2\n\
        br v2, body, done\n\
        block done:\n\
        ret\n";
    let input = write_temp("loop.tac", looped);
    let out = ursac()
        .arg(&input)
        .args(["--unroll", "0"])
        .output()
        .unwrap();
    // Typed failure or a clean success are both acceptable; a panic
    // (signal / 101) is not.
    let code = out.status.code().expect("no signal");
    assert!(code == 0 || code == 1, "unexpected exit {code}");
    assert!(!stderr_of(&out).contains("panicked"), "{}", stderr_of(&out));
}

#[test]
fn multi_block_input_defaults_to_whole_program() {
    // A CFG with a real loop used to require --unroll; now it routes
    // through the whole-program driver by default.
    let looped = "\
        block entry:\n\
        v0 = const 0\n\
        br v0, body, done\n\
        block body:\n\
        v1 = load a[0]\n\
        v2 = add v1, 1\n\
        store a[0], v2\n\
        br v2, body, done\n\
        block done:\n\
        ret\n";
    let input = write_temp("wholeprog.tac", looped);
    let out = ursac().arg(&input).output().unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# whole program:"),
        "expected the whole-program header, got: {stdout}"
    );
}

#[test]
fn whole_program_flag_works_on_a_single_block() {
    let input = write_temp("wholesingle.tac", SMALL);
    let out = ursac().arg(&input).arg("--whole-program").output().unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# whole program: 1 units"),
        "expected a one-unit program, got: {stdout}"
    );
}

#[test]
fn max_iterations_zero_degrades_but_succeeds() {
    // Budget 0 on a tight machine forces the degradation ladder to the
    // postpass-patch rung; the compile must still succeed and say so.
    let input = write_temp("pressure.tac", PRESSURE);
    let out = ursac()
        .arg(&input)
        .args(["--fus", "4", "--regs", "3", "--max-iterations", "0"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("degraded"),
        "expected a degradation warning, got: {}",
        stderr_of(&out)
    );
}

#[test]
fn no_fallback_budget_exhaustion_exits_three() {
    let input = write_temp("pressure2.tac", PRESSURE);
    let out = ursac()
        .arg(&input)
        .args([
            "--fus",
            "4",
            "--regs",
            "3",
            "--max-iterations",
            "0",
            "--no-fallback",
        ])
        .output()
        .unwrap();
    // Budget exhaustion is distinguishable from ordinary compile
    // failures (1) and usage errors (2): callers can retry with a
    // bigger budget.
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("budget"),
        "stderr: {}",
        stderr_of(&out)
    );
}

#[test]
fn generous_deadline_compiles_and_exits_zero() {
    let input = write_temp("deadline.tac", SMALL);
    let out = ursac()
        .arg(&input)
        .args(["--deadline-ms", "60000"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
}

#[test]
fn starved_step_budget_without_fallback_exits_three() {
    // The budget must starve a compile that genuinely needs transform
    // work: a tiny trace can exhaust the budget during measurement and
    // still fit the machine (conservative over-statement), which is a
    // legitimate success. PRESSURE on a tight machine is not.
    let input = write_temp("steps.tac", PRESSURE);
    let out = ursac()
        .arg(&input)
        .args([
            "--fus",
            "4",
            "--regs",
            "3",
            "--max-steps",
            "1",
            "--no-fallback",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("budget exhausted"),
        "stderr: {}",
        stderr_of(&out)
    );
}

#[test]
fn starved_step_budget_with_ladder_still_emits_code() {
    // Anytime semantics: with the degradation ladder on, an exhausted
    // budget demotes to the terminal rung instead of failing.
    let input = write_temp("steps2.tac", SMALL);
    let out = ursac()
        .arg(&input)
        .args(["--max-steps", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("# machine:"));
}

#[test]
fn bad_budget_flag_values_exit_two() {
    let input = write_temp("badbudget.tac", SMALL);
    for args in [
        ["--deadline-ms", "zero"],
        ["--max-steps", "-1"],
        ["--chaos-seed", "many"],
    ] {
        let out = ursac().arg(&input).args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn chaos_seed_never_panics() {
    // Each seed arms one fault plan (possibly a synthetic panic) with
    // isolation on; every outcome must be a clean exit code — code
    // emitted (0), a typed compile error (1), or budget exhaustion (3)
    // — and never a raw panic.
    let input = write_temp("chaos.tac", SMALL);
    for seed in 0..16u64 {
        let out = ursac()
            .arg(&input)
            .args(["--chaos-seed", &seed.to_string()])
            .output()
            .unwrap();
        let code = out.status.code().expect("killed by signal");
        assert!(
            [0, 1, 3].contains(&code),
            "seed {seed}: exit {code}: {}",
            stderr_of(&out)
        );
        // An isolated panic is *reported* with the word "panicked"
        // ("the … stage panicked (isolated at the trace boundary)");
        // what must never appear is the raw std banner "panicked at
        // <file>:<line>" from an unwound thread.
        assert!(
            !stderr_of(&out).contains("panicked at"),
            "seed {seed} leaked a panic: {}",
            stderr_of(&out)
        );
    }
}

// ---------------------------------------------------------------------
// ursalint: exit codes, per-code deny promotion, and JSON output.

fn ursalint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ursalint"))
}

#[test]
fn ursalint_clean_file_exits_zero_at_warn() {
    let input = write_temp("lint_clean.tac", SMALL);
    let out = ursalint()
        .arg(&input)
        .args(["--fus", "2", "--regs", "8"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
}

#[test]
fn ursalint_usage_errors_exit_two() {
    let out = ursalint().arg("--bogus-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // An unknown code in --deny= is a usage error, not a lint failure.
    let input = write_temp("lint_usage.tac", SMALL);
    let out = ursalint().arg(&input).arg("--deny=U9999").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
}

/// Per-code promotion semantics: `--deny=CODE` fails the run when the
/// code fires regardless of its severity, and passes when it does not.
/// `U0305` (the per-unit gap note, emitted whenever bounds run) gives
/// the deterministic "fires" case; `U0301` on a pure dependence chain
/// (every schedule meets the critical path, gap 0) the "does not".
/// Listing a `U03xx` code also auto-enables the bounds analysis.
#[test]
fn ursalint_deny_promotes_a_quality_code_to_failure() {
    let input = write_temp("lint_promote.tac", SMALL);
    let machine = ["--fus", "2", "--regs", "8"];
    let fired = ursalint()
        .arg(&input)
        .args(machine)
        .arg("--deny=U0305")
        .output()
        .unwrap();
    assert_eq!(fired.status.code(), Some(1), "{}", stderr_of(&fired));
    let quiet = ursalint()
        .arg(&input)
        .args(machine)
        .arg("--deny=U0301")
        .output()
        .unwrap();
    assert_eq!(quiet.status.code(), Some(0), "{}", stderr_of(&quiet));
    // Without promotion the same bounds run stays advisory.
    let advisory = ursalint()
        .arg(&input)
        .args(machine)
        .arg("--bounds")
        .output()
        .unwrap();
    assert_eq!(advisory.status.code(), Some(0), "{}", stderr_of(&advisory));
}

#[test]
fn ursalint_json_output_is_machine_readable() {
    let input = write_temp("lint_json.tac", SMALL);
    let out = ursalint()
        .arg(&input)
        .args(["--fus", "2", "--regs", "8", "--bounds", "--format=json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = ursa::json::parse(&stdout).expect("stdout is valid JSON");
    let rows = value.as_array().expect("a row per compilation");
    assert!(!rows.is_empty());
    for row in rows {
        assert!(row.get("program").is_some());
        assert!(row.get("strategy").is_some());
        assert!(row.get("diagnostics").is_some());
        let quality = row.get("quality").expect("--bounds adds certificates");
        assert!(quality.get("schedule_length").is_some());
        assert!(quality.get("length_bound").is_some());
    }
}

#[test]
fn ursac_bounds_flag_smoke() {
    let input = write_temp("bounds_ok.tac", SMALL);
    let out = ursac().arg(&input).arg("--bounds").output().unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = ursac().arg(&input).arg("--bounds=3").output().unwrap();
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = ursac().arg(&input).arg("--bounds=many").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "bad slack is a usage error");
}
