//! Miscompile-injection tests for the static translation validator.
//!
//! Each test compiles a program normally, checks the clean code
//! validates, then corrupts the emitted VLIW words in a way that
//! preserves surface plausibility (ops still well-formed, units still
//! assigned) but breaks a semantic obligation — and asserts the
//! validator statically rejects it with the *specific* stable code the
//! registry promises for that miscompile class:
//!
//! * a live register clobbered by a redirected destination → `U0001`,
//! * a spill reload hoisted to its store's issue cycle → `U0004`,
//! * a sequentialization edge inverted by swapping two ops → `U0009`.
//!
//! The corruptions are searched over candidate sites (the first site
//! is not always observable — e.g. a clobbered value may be dead), so
//! each test retries until the targeted diagnostic fires and fails
//! only when *no* candidate site is rejected.

use ursa::core::{Strategy, UrsaConfig};
use ursa::graph::dag::EdgeKind;
use ursa::ir::ddg::DependenceDag;
use ursa::ir::instr::Instr;
use ursa::ir::value::VirtualReg;
use ursa::ir::{Program, Trace};
use ursa::lint::{validate_translation, Code, Severity};
use ursa::machine::Machine;
use ursa::sched::vliw::{SlotOp, VliwProgram};
use ursa::sched::{is_spill_symbol, try_compile, CompileStrategy, Compiled};
use ursa::workloads::kernels::kernel_suite;
use ursa::workloads::paper::figure2_block;
use ursa_rng::Rng;
use ursa_workloads::random::{random_block, RandomShape};

fn ursa_strategy(strategy: Strategy) -> CompileStrategy {
    CompileStrategy::Ursa(UrsaConfig {
        strategy,
        ..UrsaConfig::default()
    })
}

/// A small deterministic menu of random programs (plus figure 2).
fn test_programs() -> Vec<Program> {
    let mut programs = vec![figure2_block()];
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        programs.push(random_block(
            seed,
            RandomShape {
                ops: rng.gen_range(12usize..48),
                seeds: rng.gen_range(2usize..6),
                window: rng.gen_range(3usize..12),
                store_pct: rng.gen_range(0u32..30),
            },
        ));
    }
    programs
}

/// The DAG the code was generated from (URSA's transformed DAG when
/// available, the original otherwise).
fn reference_dag(compiled: &Compiled, program: &Program) -> DependenceDag {
    match &compiled.outcome {
        Some(o) => o.ddg.clone(),
        None => DependenceDag::build(program, &Trace::single(0)),
    }
}

fn error_codes(ddg: &DependenceDag, vliw: &VliwProgram, machine: &Machine) -> Vec<Code> {
    validate_translation(ddg, vliw, machine)
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| d.code)
        .collect()
}

fn assert_clean(ddg: &DependenceDag, vliw: &VliwProgram, machine: &Machine) {
    let report = validate_translation(ddg, vliw, machine);
    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| d.to_string())
        .collect();
    assert!(
        errors.is_empty(),
        "clean code must validate, got:\n{}",
        errors.join("\n")
    );
}

/// `instr` with its destination redirected to `dst`.
fn with_dst(instr: &Instr, dst: VirtualReg) -> Instr {
    match instr.clone() {
        Instr::Const { value, .. } => Instr::Const { dst, value },
        Instr::Bin { op, a, b, .. } => Instr::Bin { op, dst, a, b },
        Instr::Un { op, a, .. } => Instr::Un { op, dst, a },
        Instr::Load { mem, .. } => Instr::Load { dst, mem },
        store @ Instr::Store { .. } => store,
    }
}

/// Every `(cycle, slot, instr)` in issue order.
fn flat_instrs(vliw: &VliwProgram) -> Vec<(usize, usize, Instr)> {
    let mut out = Vec::new();
    for (cycle, word) in vliw.words.iter().enumerate() {
        for (slot, op) in word.iter().enumerate() {
            if let SlotOp::Instr(i) = &op.op {
                out.push((cycle, slot, i.clone()));
            }
        }
    }
    out
}

/// Redirecting an intermediate op's destination onto a register that is
/// still live (defined earlier, read later) must be rejected as a
/// clobbered live register — the reader observes the wrong value and
/// the validator names the clobbering write.
#[test]
fn injected_register_clobber_is_rejected_as_u0001() {
    let machine = Machine::homogeneous(2, 8);
    let mut attempts = 0usize;
    for program in test_programs() {
        let Ok(compiled) = try_compile(
            &program,
            &Trace::single(0),
            &machine,
            ursa_strategy(Strategy::Integrated),
        ) else {
            continue;
        };
        let ddg = reference_dag(&compiled, &program);
        assert_clean(&ddg, &compiled.vliw, &machine);
        let flat = flat_instrs(&compiled.vliw);
        // Candidate sites: a writer issued strictly between a value's
        // (latest reaching) definition and one of its reads.
        for (rc, _, reader) in &flat {
            for y in reader.uses() {
                // Latest def of y before the read; live-ins count as
                // defined before cycle 0.
                let def_cycle: i64 = flat
                    .iter()
                    .filter(|(dc, _, di)| dc < rc && di.def() == Some(y))
                    .map(|(dc, _, _)| *dc as i64)
                    .max()
                    .unwrap_or(-1);
                for (wc, ws, writer) in &flat {
                    let between = (*wc as i64) > def_cycle && wc < rc;
                    if !between || writer.def().is_none() || writer.def() == Some(y) {
                        continue;
                    }
                    attempts += 1;
                    if attempts > 500 {
                        break;
                    }
                    let mut corrupted = compiled.vliw.clone();
                    if let SlotOp::Instr(i) = &mut corrupted.words[*wc][*ws].op {
                        *i = with_dst(writer, y);
                    }
                    if error_codes(&ddg, &corrupted, &machine)
                        .contains(&Code::ClobberedLiveRegister)
                    {
                        return;
                    }
                }
            }
        }
    }
    panic!("no destination redirection produced U0001 in {attempts} attempts");
}

/// Hoisting a spill reload up to its store's issue cycle violates the
/// store-commit obligation (the cell's value is not yet architecturally
/// visible) and must be rejected as a premature reload.
#[test]
fn injected_early_reload_is_rejected_as_u0004() {
    // Tight register file + spill-only discipline: guaranteed spill
    // store/reload pairs.
    let machine = Machine::homogeneous(2, 3);
    let mut attempts = 0usize;
    for program in test_programs() {
        let Ok(compiled) = try_compile(
            &program,
            &Trace::single(0),
            &machine,
            ursa_strategy(Strategy::SpillOnly),
        ) else {
            continue;
        };
        if compiled.stats.spill_loads == 0 {
            continue;
        }
        let ddg = reference_dag(&compiled, &program);
        assert_clean(&ddg, &compiled.vliw, &machine);
        let spill_cell = |i: &Instr| match i {
            Instr::Load { mem, .. } | Instr::Store { mem, .. }
                if is_spill_symbol(&compiled.vliw.symbols[mem.base.index()]) =>
            {
                Some((mem.base, mem.index))
            }
            _ => None,
        };
        let flat = flat_instrs(&compiled.vliw);
        for (sc, _, store) in &flat {
            let (Instr::Store { .. }, Some(cell)) = (store, spill_cell(store)) else {
                continue;
            };
            for (lc, ls, load) in &flat {
                let is_reload =
                    matches!(load, Instr::Load { .. }) && spill_cell(load) == Some(cell);
                if !is_reload || lc <= sc {
                    continue;
                }
                attempts += 1;
                // Reissue the reload in the store's own cycle (after the
                // store's slot, so the cell is known but uncommitted).
                let mut corrupted = compiled.vliw.clone();
                let op = corrupted.words[*lc].remove(*ls);
                corrupted.words[*sc].push(op);
                if error_codes(&ddg, &corrupted, &machine).contains(&Code::ReloadBeforeStoreCommit)
                {
                    return;
                }
            }
        }
    }
    panic!("no hoisted reload produced U0004 in {attempts} attempts");
}

/// Swapping the two endpoints of a sequentialization edge inverts the
/// issue order URSA's reduction transformation depends on (the edge is
/// what bounds register/unit pressure) and must be rejected as a
/// dropped sequence edge.
#[test]
fn injected_sequence_inversion_is_rejected_as_u0009() {
    // Machines tight enough that integrated URSA sequentializes.
    let machines = [
        Machine::homogeneous(1, 8),
        Machine::homogeneous(2, 3),
        Machine::homogeneous(2, 4),
        Machine::homogeneous(1, 16),
    ];
    let mut attempts = 0usize;
    for machine in &machines {
        for program in test_programs() {
            let Ok(compiled) = try_compile(
                &program,
                &Trace::single(0),
                machine,
                ursa_strategy(Strategy::Integrated),
            ) else {
                continue;
            };
            if compiled.stats.sequence_edges == 0 {
                continue;
            }
            let ddg = reference_dag(&compiled, &program);
            let clean = validate_translation(&ddg, &compiled.vliw, machine);
            assert!(
                !clean
                    .diagnostics
                    .iter()
                    .any(|d| d.severity() == Severity::Error),
                "clean code must validate"
            );
            for e in ddg.dag().edges() {
                if e.kind != EdgeKind::Sequence {
                    continue;
                }
                let (Some(&(cu, su)), Some(&(cv, sv))) =
                    (clean.matches.get(&e.from), clean.matches.get(&e.to))
                else {
                    continue;
                };
                // Structurally identical endpoints are interchangeable
                // values — swapping them yields an equally valid
                // assignment, not a violation.
                if cu >= cv || ddg.instr(e.from) == ddg.instr(e.to) {
                    continue;
                }
                attempts += 1;
                let mut corrupted = compiled.vliw.clone();
                let a = corrupted.words[cu as usize][su].clone();
                let b = corrupted.words[cv as usize][sv].clone();
                corrupted.words[cu as usize][su] = b;
                corrupted.words[cv as usize][sv] = a;
                if error_codes(&ddg, &corrupted, machine).contains(&Code::DroppedSequenceEdge) {
                    return;
                }
            }
        }
    }
    panic!("no endpoint swap produced U0009 in {attempts} attempts");
}

/// The validator accepts everything the real pipeline produces: every
/// URSA ladder rung plus postpass patching, on comfortable, tight, and
/// classed machines, over the paper workloads and a random menu.
#[test]
fn validator_accepts_all_strategies_on_workload_menu() {
    let strategies = [
        ("integrated", ursa_strategy(Strategy::Integrated)),
        ("phased", ursa_strategy(Strategy::Phased)),
        ("phased-fu-first", ursa_strategy(Strategy::PhasedFuFirst)),
        ("spill-only", ursa_strategy(Strategy::SpillOnly)),
        ("postpass", CompileStrategy::Postpass),
    ];
    let machines = [
        Machine::homogeneous(4, 16),
        Machine::homogeneous(2, 3),
        Machine::classic_vliw(),
    ];
    let mut programs = test_programs();
    programs.extend(kernel_suite().into_iter().map(|k| k.program));
    let mut checked = 0usize;
    for program in &programs {
        for machine in &machines {
            for (name, strategy) in &strategies {
                let Ok(compiled) =
                    try_compile(program, &Trace::single(0), machine, strategy.clone())
                else {
                    continue;
                };
                let ddg = reference_dag(&compiled, program);
                let errors: Vec<String> = validate_translation(&ddg, &compiled.vliw, machine)
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity() == Severity::Error)
                    .map(|d| d.to_string())
                    .collect();
                assert!(
                    errors.is_empty(),
                    "[{machine}, {name}] rejected a pipeline-produced schedule:\n{}",
                    errors.join("\n")
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 50, "menu too small: only {checked} compilations");
}
