//! Miscompile-injection tests for the whole-program lint
//! (`ursa::lint::lint_program`) — the program-scale analog of
//! `tests/lint_injection.rs`. Each test compiles a multi-block CFG
//! through the whole-program driver, checks the clean schedule lints
//! clean at deny level, then corrupts the stitched units in a way the
//! boundary hand-off contract must catch:
//!
//! * a single dropped `__boundary` store → `U0201` missing-compensation,
//! * a unit claiming a register live-in → `U0202` clobbered-live-out,
//! * an injected store to a dead boundary cell → `U0304`
//!   dead-boundary-store (quality layer, needs `bounds`).

use ursa::ir::instr::Instr;
use ursa::ir::parser::parse;
use ursa::ir::value::{MemRef, Operand, SymbolId, VirtualReg};
use ursa::ir::Program;
use ursa::lint::{lint_program, Code, LintLevel};
use ursa::machine::{FuClass, Machine};
use ursa::sched::{
    try_compile_program, CompileStrategy, MachineOp, PipelineOptions, ProgramSchedule, SlotOp,
    BOUNDARY_SYMBOL,
};

/// A counted loop around a diamond: values cross every unit boundary
/// (the accumulator v1 and induction variable v0 survive the back
/// edge, v2 crosses the diamond), so compensation stores are load-
/// bearing on every off-unit edge.
const DIAMOND_LOOP: &str = "\
    block entry:\n\
    v0 = const 0\n\
    v1 = const 0\n\
    jmp head\n\
    block head @ 8:\n\
    v2 = load a[v0]\n\
    v3 = cmplt v2, 50\n\
    br v3, small, big\n\
    block small:\n\
    v4 = mul v2, 2\n\
    v1 = add v1, v4\n\
    jmp next\n\
    block big:\n\
    v1 = add v1, v2\n\
    jmp next\n\
    block next:\n\
    store b[v0], v1\n\
    v0 = add v0, 1\n\
    v5 = cmplt v0, 8\n\
    br v5, head, done\n\
    block done:\n\
    store c[0], v1\n\
    ret\n";

fn compile(
    program: &Program,
    machine: &Machine,
    strategy: &CompileStrategy,
    opts: &PipelineOptions,
) -> ProgramSchedule {
    try_compile_program(program, machine, strategy.clone(), opts)
        .unwrap_or_else(|e| panic!("{}: {e}", strategy.name()))
}

/// Every `(unit, word, slot)` holding a `__boundary` store.
fn boundary_store_sites(sched: &ProgramSchedule) -> Vec<(usize, usize, usize)> {
    let mut sites = Vec::new();
    for (u, unit) in sched.units.iter().enumerate() {
        let vliw = &unit.compiled.vliw;
        for (w, word) in vliw.words.iter().enumerate() {
            for (s, op) in word.iter().enumerate() {
                if let SlotOp::Instr(Instr::Store { mem, .. }) = &op.op {
                    if vliw.symbols.get(mem.base.index()).map(String::as_str)
                        == Some(BOUNDARY_SYMBOL)
                    {
                        sites.push((u, w, s));
                    }
                }
            }
        }
    }
    sites
}

/// The clean whole-program schedule is correctness-clean at deny level
/// and free of actionable quality findings (avoidable spills,
/// redundant spill traffic, dead boundary stores) for every strategy
/// in the default battery — the baseline every injection below
/// perturbs. `U0301` length gaps on individual units are allowed:
/// some baselines honestly miss the certificate, which is exactly the
/// advisory finding the quality layer exists to report.
#[test]
fn diamond_loop_lints_clean_on_every_strategy() {
    let program = parse(DIAMOND_LOOP).unwrap();
    let machine = Machine::homogeneous(2, 4);
    let plain = PipelineOptions::default();
    let bounds_on = PipelineOptions {
        bounds: Some(0),
        ..Default::default()
    };
    let strategies = [
        CompileStrategy::Ursa(Default::default()),
        CompileStrategy::Postpass,
        CompileStrategy::Prepass,
        CompileStrategy::GoodmanHsu,
    ];
    for strategy in strategies {
        let sched = compile(&program, &machine, &strategy, &plain);
        assert!(
            !boundary_store_sites(&sched).is_empty(),
            "{}: the loop must compensate through the boundary area",
            strategy.name()
        );
        let report = lint_program(&program, &sched, &machine, &strategy, &plain);
        assert!(
            !report.fails_at(LintLevel::Deny),
            "{} fails deny-level lint:\n{report}",
            strategy.name()
        );
        let quality = lint_program(&program, &sched, &machine, &strategy, &bounds_on);
        for code in [
            Code::AvoidableSpill,
            Code::RedundantSpillTraffic,
            Code::DeadBoundaryStore,
        ] {
            assert!(
                !quality.has(code),
                "{}: unexpected {code:?}:\n{quality}",
                strategy.name()
            );
        }
        assert!(
            quality.has(Code::OptimalityGap),
            "{}: one gap note per unit expected",
            strategy.name()
        );
    }
}

/// Dropping one boundary store severs one value's hand-off; some
/// candidate site must be reported as missing compensation (a cell can
/// be stored redundantly, so the search tries every site).
#[test]
fn dropped_boundary_store_is_rejected_as_u0201() {
    let program = parse(DIAMOND_LOOP).unwrap();
    let machine = Machine::homogeneous(2, 4);
    let opts = PipelineOptions::default();
    let strategy = CompileStrategy::Postpass;
    let clean = compile(&program, &machine, &strategy, &opts);
    assert!(
        !lint_program(&program, &clean, &machine, &strategy, &opts).has(Code::MissingCompensation)
    );
    let sites = boundary_store_sites(&clean);
    assert!(!sites.is_empty());
    let mut attempts = 0usize;
    for (u, w, s) in sites {
        attempts += 1;
        let mut sched = compile(&program, &machine, &strategy, &opts);
        sched.units[u].compiled.vliw.words[w].remove(s);
        if lint_program(&program, &sched, &machine, &strategy, &opts).has(Code::MissingCompensation)
        {
            return;
        }
    }
    panic!("no dropped boundary store produced U0201 in {attempts} attempts");
}

/// A unit that declares a register live-in expects a value to survive
/// a unit switch in a register — the ABI says none do.
#[test]
fn injected_register_live_in_is_rejected_as_u0202() {
    let program = parse(DIAMOND_LOOP).unwrap();
    let machine = Machine::homogeneous(2, 4);
    let opts = PipelineOptions::default();
    let strategy = CompileStrategy::Ursa(Default::default());
    let mut sched = compile(&program, &machine, &strategy, &opts);
    assert!(!lint_program(&program, &sched, &machine, &strategy, &opts).has(Code::ClobberedLiveOut));
    sched.units[0]
        .compiled
        .vliw
        .live_in
        .push((0, VirtualReg(1)));
    let report = lint_program(&program, &sched, &machine, &strategy, &opts);
    assert!(
        report.has(Code::ClobberedLiveOut),
        "register live-in must be reported:\n{report}"
    );
}

/// A store to a boundary cell no successor reads is pure cross-unit
/// traffic; the quality layer (bounds on) must flag it, and the base
/// correctness layer must not (the schedule is still correct).
#[test]
fn injected_dead_boundary_store_is_rejected_as_u0304() {
    let program = parse(DIAMOND_LOOP).unwrap();
    let machine = Machine::homogeneous(2, 4);
    let bounds_on = PipelineOptions {
        bounds: Some(0),
        ..Default::default()
    };
    let strategy = CompileStrategy::Postpass;
    let mut sched = compile(&program, &machine, &strategy, &bounds_on);
    let entry = sched.entry_unit();
    let unit = &mut sched.units[entry];
    let boundary = unit
        .compiled
        .vliw
        .symbols
        .iter()
        .position(|s| s == BOUNDARY_SYMBOL)
        .expect("the entry unit hands v0/v1 to the loop");
    // A fresh trailing word keeps the injection free of unit-slot
    // conflicts (the entry unit's existing words may use every FU).
    unit.compiled.vliw.words.push(vec![MachineOp {
        op: SlotOp::Instr(Instr::Store {
            mem: MemRef::new(SymbolId(boundary as u32), 63i64),
            src: Operand::Imm(0),
        }),
        fu: (FuClass::Universal, 1),
    }]);
    let report = lint_program(&program, &sched, &machine, &strategy, &bounds_on);
    assert!(
        report.has(Code::DeadBoundaryStore),
        "dead boundary store must be reported:\n{report}"
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.severity() == ursa::lint::Severity::Error),
        "a dead store is waste, not a miscompile:\n{report}"
    );
}
