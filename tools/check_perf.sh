#!/usr/bin/env bash
# The CI perf gate: re-runs the measurement benchmarks and compares
# their medians against the committed baseline (BENCH_baseline.json at
# the repo root), failing on any regression past the threshold
# (default 25%, matching shared-runner noise; see README "Performance
# trajectory").
#
# The heavy lifting — JSON parsing, median comparison, exit status —
# lives in the in-tree `perf_compare` binary so the gate logic is
# itself under test and needs no jq/python on the runner.
#
# Usage: tools/check_perf.sh [--threshold RATIO] [--update] [repo-root]
#        tools/check_perf.sh --compare A.json B.json
#   --threshold 1.25   gate ratio handed to perf_compare
#   --update           re-measure and overwrite the committed baseline
#                      (for deliberate, reviewed refreshes after a
#                      genuine speedup — never run this in CI)
#   --compare A B      no re-measuring, no gate: print per-series
#                      speedup ratios between two recorded tables
#                      (regenerates EXPERIMENTS.md numbers mechanically)
set -euo pipefail

threshold=1.25
update=0
compare=0
while :; do
    case "${1:-}" in
    --threshold)
        threshold="$2"
        shift 2
        ;;
    --update)
        update=1
        shift
        ;;
    --compare)
        compare=1
        shift
        ;;
    *) break ;;
    esac
done

if [ "$compare" -eq 1 ]; then
    if [ $# -ne 2 ]; then
        echo "usage: tools/check_perf.sh --compare A.json B.json" >&2
        exit 2
    fi
    a="$(realpath "$1")"
    b="$(realpath "$2")"
    root="$(cd "$(dirname "$0")/.." && pwd)"
    cd "$root"
    cargo build --release --offline -q -p ursa-bench --bin perf_compare
    exec ./target/release/perf_compare --ratios "$a" "$b"
fi

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root"

# Absolute paths: `cargo bench` runs the harness with the *package*
# directory (crates/bench) as cwd, so relative --json paths would land
# there instead of the repo root.
baseline="$root/BENCH_baseline.json"
current="$root/target/BENCH_current.json"

echo "building benchmarks (release, offline)..."
cargo build --release --offline -p ursa-bench --benches --bin perf_compare

if [ "$update" -eq 1 ]; then
    echo "re-measuring the committed baseline ($baseline)..."
    cargo bench --offline -p ursa-bench --bench measurement -- --json "$baseline"
    echo "baseline refreshed; review and commit $baseline deliberately"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "FAIL: $baseline missing; run tools/check_perf.sh --update to create it" >&2
    exit 1
fi

mkdir -p "$(dirname "$current")"
echo "measuring current tree..."
cargo bench --offline -p ursa-bench --bench measurement -- --json "$current"

./target/release/perf_compare --threshold "$threshold" "$baseline" "$current"
