#!/usr/bin/env bash
# Drift tripwire for the stable lint-code registry. The single source
# of truth is `Code::as_str` in crates/lint/src/diag.rs; codes are
# append-only and tools/CI match on them, so the human-facing tables
# must never disagree with it:
#
#   1. completeness — every registry code appears in the README code
#      table and in the crates/lint/src/lib.rs module-doc registry;
#   2. no ghosts — every `U0xxx` token mentioned in README.md,
#      DESIGN.md, or crates/lint/src/lib.rs names a real registry code
#      (a renamed or deleted code cannot linger in prose).
#
# Pure grep/sort, no toolchain needed; run by tools/check_hermetic.sh
# and the CI hermetic job.
#
# Usage: tools/check_lint_codes.sh [repo-root]
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root"

registry_src=crates/lint/src/diag.rs
docs_complete=(README.md crates/lint/src/lib.rs)
docs_no_ghosts=(README.md DESIGN.md crates/lint/src/lib.rs)

# The authoritative list: only the `Code::Variant => "U0xxx"` match
# arms of as_str, not test assertions or prose.
registry=$(grep -o '=> "U0[0-9][0-9][0-9]"' "$registry_src" |
    grep -o 'U0[0-9][0-9][0-9]' | sort -u)
if [ -z "$registry" ]; then
    echo "FAIL: no registry codes found in $registry_src" >&2
    exit 1
fi

status=0

for doc in "${docs_complete[@]}"; do
    missing=$(comm -23 <(echo "$registry") \
        <(grep -o 'U0[0-9][0-9][0-9]' "$doc" | sort -u))
    if [ -n "$missing" ]; then
        echo "FAIL: $doc is missing registry codes:" >&2
        echo "$missing" | sed 's/^/  /' >&2
        status=1
    fi
done

for doc in "${docs_no_ghosts[@]}"; do
    ghosts=$(comm -13 <(echo "$registry") \
        <(grep -o 'U0[0-9][0-9][0-9]' "$doc" | sort -u))
    if [ -n "$ghosts" ]; then
        echo "FAIL: $doc mentions codes absent from $registry_src:" >&2
        echo "$ghosts" | sed 's/^/  /' >&2
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "      update the doc tables (or diag.rs) so they agree;" >&2
    echo "      codes are append-only — see DESIGN.md section 8" >&2
    exit 1
fi

echo "OK: lint-code tables agree with the diag.rs registry" \
    "($(echo "$registry" | wc -l) codes)"
