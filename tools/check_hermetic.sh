#!/usr/bin/env bash
# Fails if any Cargo.toml in the workspace declares a dependency that is
# not an in-tree `path` dependency. This is the tripwire that keeps the
# build hermetic: `cargo build --release --offline && cargo test -q
# --offline` must work with no registry access, so the only legal
# dependency form is `foo = { path = "..." }` (directly or through
# `foo.workspace = true` resolving to a path entry in the workspace
# table).
#
# With --with-build, additionally proves the stress harness (the
# seeded differential fuzzer CI runs) builds with no registry access.
# With --with-lint, does the same for the ursalint static-diagnostics
# binary (which pulls in ursa-lint and the whole pipeline).
# With --with-chaos, builds the stress harness offline and runs a
# fault-injection smoke slice (programs × fault plans, budget flags on):
# the run must end with zero failures — typed errors are expected,
# panics and miscompiles are not.
# With --with-programs, builds the stress harness and the ursac driver
# offline, runs a whole-program smoke slice (multi-block CFGs through
# the whole-program driver and both program-level oracles), and compiles
# the shipped multi-block examples end-to-end under --lint=deny.
#
# Usage: tools/check_hermetic.sh [--with-build] [--with-lint]
#        [--with-chaos] [--with-programs] [repo-root]
set -euo pipefail

with_build=0
with_lint=0
with_chaos=0
with_programs=0
while :; do
    case "${1:-}" in
    --with-build)
        with_build=1
        shift
        ;;
    --with-lint)
        with_lint=1
        shift
        ;;
    --with-chaos)
        with_chaos=1
        shift
        ;;
    --with-programs)
        with_programs=1
        shift
        ;;
    *) break ;;
    esac
done

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root"

status=0

while IFS= read -r manifest; do
    # Walk the manifest line by line, tracking which [section] we are
    # in; inside any *dependencies section, every `name = spec` entry
    # must be a path dependency or a `name.workspace = true` reference.
    violations=$(awk '
        /^[[:space:]]*\[/ {
            section = $0
            gsub(/[][[:space:]]/, "", section)
            in_deps = (section ~ /dependencies$/)
            next
        }
        !in_deps { next }
        /^[[:space:]]*(#|$)/ { next }
        /^[[:space:]]*[A-Za-z0-9_-]+([.]workspace)?[[:space:]]*=/ {
            if ($0 ~ /workspace[[:space:]]*=[[:space:]]*true/) next
            if ($0 ~ /path[[:space:]]*=/) next
            print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$violations" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$violations" >&2
        status=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*' -not -path './.git/*')

# `name.workspace = true` entries are only hermetic if the workspace
# table they resolve to is itself all-path, which the loop above already
# checked ([workspace.dependencies] matches /dependencies$/).

if [ "$status" -ne 0 ]; then
    echo "FAIL: registry dependencies are not allowed; vendor the code in-tree instead" >&2
    echo "      (see CONTRIBUTING.md, section \"Hermetic builds\")" >&2
    exit 1
fi

echo "OK: all Cargo.toml dependencies are in-tree path dependencies"

# The lint-code registry tripwire rides along: pure grep, no build, and
# the same "tools/CI match on stable codes" contract this script guards.
"$(dirname "$0")/check_lint_codes.sh" "$root"

if [ "$with_build" -eq 1 ]; then
    echo "building the stress harness offline..."
    cargo build --release --offline -p ursa-bench --bin stress
    echo "OK: stress harness builds with no registry access"
fi

if [ "$with_lint" -eq 1 ]; then
    echo "building ursalint offline..."
    cargo build --release --offline --bin ursalint
    echo "OK: ursalint builds with no registry access"
fi

if [ "$with_chaos" -eq 1 ]; then
    echo "building the stress harness offline..."
    cargo build --release --offline -p ursa-bench --bin stress
    echo "running the chaos smoke slice..."
    cargo run --release --offline -p ursa-bench --bin stress -- \
        --seeds 0..8 --chaos --plans 8 --validate
    cargo run --release --offline -p ursa-bench --bin stress -- \
        --seeds 0..4 --chaos --plans 4 --deadline-ms 50 --max-steps 2000000
    echo "OK: chaos smoke passed (typed errors only, no panics, no miscompiles)"
fi

if [ "$with_programs" -eq 1 ]; then
    echo "building the stress harness and ursac offline..."
    cargo build --release --offline -p ursa-bench --bin stress
    cargo build --release --offline --bin ursac
    echo "running the whole-program smoke slice..."
    cargo run --release --offline -p ursa-bench --bin stress -- \
        --seeds 0..8 --programs
    cargo run --release --offline -p ursa-bench --bin stress -- \
        --seeds 0..4 --programs --chaos --plans 4
    echo "compiling the shipped multi-block examples under --lint=deny..."
    ./target/release/ursac --whole-program examples/data/hydro.tac --lint=deny >/dev/null
    ./target/release/ursac --whole-program examples/data/loop.tac --lint=deny --run >/dev/null
    echo "OK: whole-program smoke passed (both oracles, both examples)"
fi
