//! # URSA — Unified ReSource Allocation for VLIW architectures
//!
//! A Rust reproduction of *"URSA: A Unified ReSource Allocator for Registers
//! and Functional Units in VLIW Architectures"* (David A. Berson, Rajiv
//! Gupta, Mary Lou Soffa; IFIP WG 10.3 Working Conference on Architectures
//! and Compilation Techniques for Fine and Medium Grain Parallelism, 1993).
//!
//! URSA replaces the traditional phase split between instruction scheduling
//! and register allocation with a new split: **allocate all resources
//! first** (registers *and* functional units, on a common dependence-DAG
//! representation), then **assign** them. The allocation phase measures the
//! worst-case requirement of each resource over *all* legal schedules via
//! Dilworth chain decompositions of per-resource *Reuse DAGs*, and applies
//! DAG transformations (sequentialization and spilling) until no schedule
//! can exceed the target machine's capacity.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`graph`] — DAGs, bipartite matching, chain decomposition, hammocks.
//! * [`ir`] — three-address IR, parser, CFG, traces, dependence DAGs.
//! * [`machine`] — VLIW machine descriptions.
//! * [`core`] — the URSA measurement and transformation engine.
//! * [`sched`] — resource assignment, VLIW code generation, and the
//!   baseline phase orderings the paper compares against.
//! * [`lint`] — the static translation validator and `ursalint`
//!   diagnostic framework (stable `U00xx`/`U01xx` codes).
//! * [`vm`] — a VLIW simulator used to validate semantic equivalence.
//! * [`workloads`] — the paper's worked example plus kernel and random-DAG
//!   generators used by the experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use ursa::core::{UrsaConfig, allocate};
//! use ursa::machine::Machine;
//! use ursa::workloads::paper::figure2_block;
//! use ursa::ir::ddg::DependenceDag;
//!
//! // The paper's Figure 2 basic block.
//! let block = figure2_block();
//! let dag = DependenceDag::from_entry_block(&block);
//!
//! // A VLIW machine with 3 universal functional units and 4 registers.
//! let machine = Machine::homogeneous(3, 4);
//!
//! // Run the URSA allocation phase: afterwards no legal schedule of the
//! // transformed DAG can need more than 3 FUs or 4 registers.
//! let outcome = allocate(dag, &machine, &UrsaConfig::default());
//! assert_eq!(outcome.residual_excess, 0);
//! assert!(outcome.final_measurement.fits(&machine));
//! ```

pub use ursa_core as core;
pub use ursa_graph as graph;
pub use ursa_ir as ir;
pub use ursa_json as json;
pub use ursa_lint as lint;
pub use ursa_machine as machine;
pub use ursa_sched as sched;
pub use ursa_vm as vm;
pub use ursa_workloads as workloads;
