//! `ursac` — the URSA command-line compiler.
//!
//! Compiles a textual three-address program (see `ursa-ir`'s grammar)
//! for a VLIW machine and prints the wide words, the measured resource
//! requirements, a DOT rendering, or the simulated execution:
//!
//! ```text
//! ursac program.tac                        # compile & print VLIW code
//! ursac program.tac --fus 4 --regs 8       # machine shape
//! ursac program.tac --classic              # classed machine w/ latencies
//! ursac program.tac --pipelined            # pipelined classed machine
//! ursac program.tac --machine m.json       # machine from a JSON description
//! ursac program.tac --strategy postpass    # ursa|postpass|prepass|gh
//! ursac program.tac --measure              # requirements only
//! ursac program.tac --dot                  # DOT graph of the trace DAG
//! ursac program.tac --run                  # compile, simulate, show memory
//! ursac program.tac --unroll 4             # unroll the first self-loop
//! ursac program.tac --validate             # stage invariant checks on
//! ursac program.tac --max-iterations 16    # URSA reduction budget
//! ursac program.tac --no-fallback          # fail instead of degrading
//! ursac program.tac --lint                 # static lint, warn level
//! ursac program.tac --lint=deny            # lint warnings fail too
//! ursac program.tac --bounds               # quality analysis (U03xx)
//! ursac program.tac --bounds=2             # ... with 2 cycles of slack
//! ursac program.tac --dot-annotated        # DOT + pressure/lint colors
//! ursac program.tac --deadline-ms 2000     # wall-clock compile budget
//! ursac program.tac --max-steps 1000000    # cooperative work-step cap
//! ursac program.tac --chaos-seed 7         # arm one seeded fault plan
//! ursac program.tac --whole-program        # compile the full CFG
//! ```
//!
//! Multi-block programs compile **whole-program by default**: the CFG is
//! partitioned into single-entry units, cross-unit values travel through
//! the `__boundary` hand-off area, and every unit runs through the full
//! per-trace pipeline. `--unroll`, `--dot`, `--measure` and
//! `--dot-annotated` keep the classic single-trace view (the hottest
//! block); `--whole-program` forces the program driver even for
//! single-block inputs.
//!
//! Exit status: 0 on success, 1 on compilation or simulation failure,
//! 2 on usage errors and lint denials, 3 when the compile budget
//! (`--deadline-ms` / `--max-steps`, or the allocation iteration budget
//! under `--no-fallback`) was exhausted.

use std::collections::HashMap;
use std::process::ExitCode;
use ursa::core::{find_excessive, measure, AllocCtx, MeasureOptions, UrsaConfig};
use ursa::ir::ddg::DependenceDag;
use ursa::ir::dot::{to_dot, to_dot_annotated, DotAnnotation};
use ursa::ir::program::Program;
use ursa::ir::unroll::{find_self_loop, unroll_self_loop};
use ursa::ir::{parse, Trace};
use ursa::lint::{lint_compiled, lint_compiled_opts, lint_program, Severity};
use ursa::machine::Machine;
use ursa::sched::{
    try_compile_program, try_compile_with, CompileError, CompileStrategy, LintLevel,
    PipelineOptions,
};
use ursa::vm::equiv::seeded_memory;
use ursa::vm::program::run_program;
use ursa::vm::wide::run_vliw;

struct Options {
    input: String,
    fus: u32,
    regs: Option<u32>,
    classic: bool,
    pipelined: bool,
    machine_file: Option<String>,
    strategy: String,
    measure_only: bool,
    dot: bool,
    run: bool,
    unroll: Option<usize>,
    validate: bool,
    max_iterations: Option<usize>,
    no_fallback: bool,
    lint: LintLevel,
    bounds: Option<u64>,
    dot_annotated: bool,
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
    chaos_seed: Option<u64>,
    whole_program: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        fus: 4,
        regs: None,
        classic: false,
        pipelined: false,
        machine_file: None,
        strategy: "ursa".to_string(),
        measure_only: false,
        dot: false,
        run: false,
        unroll: None,
        validate: false,
        max_iterations: None,
        no_fallback: false,
        lint: LintLevel::Allow,
        bounds: None,
        dot_annotated: false,
        deadline_ms: None,
        max_steps: None,
        chaos_seed: None,
        whole_program: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--fus" => opts.fus = take("--fus")?.parse().map_err(|e| format!("--fus: {e}"))?,
            "--regs" => {
                opts.regs = Some(
                    take("--regs")?
                        .parse()
                        .map_err(|e| format!("--regs: {e}"))?,
                )
            }
            "--classic" => opts.classic = true,
            "--pipelined" => opts.pipelined = true,
            "--machine" => opts.machine_file = Some(take("--machine")?),
            "--strategy" => opts.strategy = take("--strategy")?,
            "--measure" => opts.measure_only = true,
            "--dot" => opts.dot = true,
            "--run" => opts.run = true,
            "--unroll" => {
                opts.unroll = Some(
                    take("--unroll")?
                        .parse()
                        .map_err(|e| format!("--unroll: {e}"))?,
                )
            }
            "--validate" => opts.validate = true,
            "--max-iterations" => {
                opts.max_iterations = Some(
                    take("--max-iterations")?
                        .parse()
                        .map_err(|e| format!("--max-iterations: {e}"))?,
                )
            }
            "--no-fallback" => opts.no_fallback = true,
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--max-steps" => {
                opts.max_steps = Some(
                    take("--max-steps")?
                        .parse()
                        .map_err(|e| format!("--max-steps: {e}"))?,
                )
            }
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    take("--chaos-seed")?
                        .parse()
                        .map_err(|e| format!("--chaos-seed: {e}"))?,
                )
            }
            "--lint" => opts.lint = LintLevel::Warn,
            "--bounds" => opts.bounds = Some(0),
            "--dot-annotated" => opts.dot_annotated = true,
            "--whole-program" => opts.whole_program = true,
            other if other.starts_with("--lint=") => {
                let level = &other["--lint=".len()..];
                opts.lint = LintLevel::parse(level)
                    .ok_or_else(|| format!("--lint: unknown level '{level}'"))?;
            }
            other if other.starts_with("--bounds=") => {
                let slack = &other["--bounds=".len()..];
                opts.bounds = Some(slack.parse().map_err(|e| format!("--bounds: {e}"))?);
            }
            "--help" | "-h" => return Err("usage: ursac <file.tac> [options]".to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            file => {
                if !opts.input.is_empty() {
                    return Err("multiple input files given".to_string());
                }
                opts.input = file.to_string();
            }
        }
    }
    if opts.input.is_empty() {
        return Err("no input file (try --help)".to_string());
    }
    if opts.machine_file.is_some() && (opts.classic || opts.pipelined) {
        return Err("--machine conflicts with --classic/--pipelined".to_string());
    }
    // The quality analysis reports through the lint battery; asking for
    // it implies at least warn-level linting.
    if opts.bounds.is_some() && opts.lint == LintLevel::Allow {
        opts.lint = LintLevel::Warn;
    }
    Ok(opts)
}

fn build_machine(opts: &Options) -> Result<Machine, String> {
    if let Some(path) = &opts.machine_file {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let machine = Machine::from_json(&json).map_err(|e| e.to_string())?;
        return match opts.regs {
            Some(regs) => machine.try_with_registers(regs).map_err(|e| e.to_string()),
            None => Ok(machine),
        };
    }
    if opts.classic || opts.pipelined {
        let base = if opts.pipelined {
            Machine::pipelined_vliw()
        } else {
            Machine::classic_vliw()
        };
        base.try_with_registers(opts.regs.unwrap_or(16))
            .map_err(|e| e.to_string())
    } else {
        Machine::try_homogeneous(opts.fus, opts.regs.unwrap_or(16)).map_err(|e| e.to_string())
    }
}

/// The whole-program path: unit selection + boundary compensation +
/// per-unit pipeline, program-level lint, stitched simulation.
fn compile_whole_program(
    program: &Program,
    machine: &Machine,
    strategy: CompileStrategy,
    pipeline: &PipelineOptions,
    opts: &Options,
) -> ExitCode {
    let sched = match try_compile_program(program, machine, strategy.clone(), pipeline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ursac: {e}");
            return match e {
                CompileError::DeadlineExceeded { .. } | CompileError::BudgetExhausted { .. } => {
                    ExitCode::from(3)
                }
                _ => ExitCode::FAILURE,
            };
        }
    };
    if opts.lint != LintLevel::Allow {
        let report = lint_program(program, &sched, machine, &strategy, pipeline);
        eprint!("{report}");
        if report.fails_at(opts.lint) {
            eprintln!("ursac: lint failed at level '{}'", opts.lint);
            return ExitCode::from(2);
        }
    }
    for unit in &sched.units {
        if let Some(report) = unit.compiled.fallback.as_ref().filter(|r| r.degraded()) {
            eprintln!(
                "ursac: warning: unit at block {} degraded — {report}",
                unit.trace.blocks[0]
            );
        }
    }
    let label_of = |b: usize| program.blocks[b].label.as_str();
    println!("# machine: {machine}");
    println!(
        "# whole program: {} units, {} ops, {} memory ops, {} spill ops, \
         {} total schedule cycles",
        sched.units.len(),
        sched.op_count(),
        sched.memory_traffic(),
        sched.spill_ops(),
        sched.schedule_length()
    );
    for unit in &sched.units {
        let blocks: Vec<&str> = unit.trace.blocks.iter().map(|&b| label_of(b)).collect();
        let exits: Vec<&str> = unit.exits.iter().map(|&b| label_of(b)).collect();
        let next = match unit.fallthrough {
            Some(t) => label_of(t),
            None => "return",
        };
        println!(
            "\n# unit [{}]: {} cycles, {} ops, exits [{}], then {next}",
            blocks.join(", "),
            unit.compiled.stats.schedule_length,
            unit.compiled.stats.ops,
            exits.join(", "),
        );
        print!("{}", unit.compiled.vliw);
    }
    if opts.run {
        let memory = seeded_memory(program, 64, 1);
        match run_program(&sched, machine, &memory, &HashMap::new(), 1_000_000) {
            Ok(result) => {
                println!(
                    "\n# simulated {} cycles, {} ops, {} unit runs",
                    result.cycles, result.ops_executed, result.unit_runs
                );
                // Show only the program's own cells the run changed (the
                // boundary area is compiler scratch).
                let mut cells: Vec<_> = result
                    .memory
                    .iter()
                    .filter(|&(sym, idx, value)| {
                        sym.index() < program.symbols.len() && memory.load(sym, idx) != value
                    })
                    .collect();
                cells.sort();
                for (sym, idx, value) in cells {
                    let name = program
                        .symbols
                        .get(sym.index())
                        .cloned()
                        .unwrap_or_else(|| format!("{sym:?}"));
                    println!("# {name}[{idx}] = {value}");
                }
            }
            Err(e) => {
                eprintln!("ursac: simulation fault: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ursac: {msg}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&opts.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ursac: cannot read {}: {e}", opts.input);
            return ExitCode::from(2);
        }
    };
    let mut program = match parse(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ursac: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(factor) = opts.unroll {
        let Some(block) = find_self_loop(&program) else {
            eprintln!("ursac: --unroll given but the program has no self-loop");
            return ExitCode::FAILURE;
        };
        program = match unroll_self_loop(&program, block, factor) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("ursac: {e}");
                return ExitCode::FAILURE;
            }
        };
    }

    let machine = match build_machine(&opts) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("ursac: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Compile the hottest block (the self-loop body if present, else the
    // entry block).
    let block = find_self_loop(&program).unwrap_or(0);
    let trace = Trace::single(block);
    let ddg = DependenceDag::build(&program, &trace);

    if opts.dot {
        print!("{}", to_dot(&ddg, "trace"));
        return ExitCode::SUCCESS;
    }
    if opts.measure_only {
        let mut ctx = AllocCtx::new(ddg, &machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        println!("machine: {machine}");
        println!("critical path: {} cycles", ctx.critical_path());
        for rm in &m.resources {
            println!("{}", rm.requirement);
        }
        return ExitCode::SUCCESS;
    }

    let mut config = UrsaConfig {
        paranoid: opts.validate,
        ..UrsaConfig::default()
    };
    if let Some(n) = opts.max_iterations {
        config.max_iterations = n;
    }
    let strategy = match opts.strategy.as_str() {
        "ursa" => CompileStrategy::Ursa(config),
        "postpass" => CompileStrategy::Postpass,
        "prepass" => CompileStrategy::Prepass,
        "gh" | "goodman-hsu" => CompileStrategy::GoodmanHsu,
        other => {
            eprintln!("ursac: unknown strategy '{other}'");
            return ExitCode::from(2);
        }
    };
    let pipeline = PipelineOptions {
        validate: opts.validate,
        no_fallback: opts.no_fallback,
        lint: opts.lint,
        bounds: opts.bounds,
        deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        max_steps: opts.max_steps,
        // An armed fault plan may inject a synthetic panic; isolate it
        // at the trace boundary so it surfaces as a typed error.
        isolate: opts.chaos_seed.is_some(),
        ..PipelineOptions::default()
    };
    if let Some(seed) = opts.chaos_seed {
        let plan = ursa::core::FaultPlan::from_seed(seed);
        eprintln!("ursac: chaos: armed fault plan {plan} (seed {seed})");
        ursa::core::fault::arm(plan);
        // An injected panic is caught at the trace boundary and
        // reported as a typed error; silence the default hook so the
        // isolated unwind does not spray a backtrace banner first.
        std::panic::set_hook(Box::new(|_| {}));
    }
    // Multi-block programs go through the whole-program driver unless a
    // single-trace view was requested; `--whole-program` forces it even
    // for single-block inputs.
    if (opts.whole_program || program.blocks.len() > 1)
        && opts.unroll.is_none()
        && !opts.dot_annotated
    {
        return compile_whole_program(&program, &machine, strategy, &pipeline, &opts);
    }
    let compiled = match try_compile_with(&program, &trace, &machine, strategy.clone(), &pipeline) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ursac: {e}");
            return match e {
                CompileError::DeadlineExceeded { .. } | CompileError::BudgetExhausted { .. } => {
                    ExitCode::from(3)
                }
                _ => ExitCode::FAILURE,
            };
        }
    };
    if opts.dot_annotated {
        // Annotate the trace DAG with pressure hotspots and any lint
        // findings (lint always runs for this view, at least at warn).
        let report = lint_compiled(&program, &trace, &machine, &strategy, &compiled);
        let mut anns = Vec::new();
        let mut ctx = AllocCtx::new(ddg.clone(), &machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        let kills = m.kills.clone();
        for rm in &m.resources {
            if rm.requirement.excess() == 0 {
                continue;
            }
            if let Some(set) = find_excessive(&mut ctx, rm, &kills) {
                for n in set.chains.iter().flatten() {
                    anns.push(DotAnnotation {
                        node: *n,
                        color: "gold".to_string(),
                        note: format!("excessive {}", rm.requirement.resource),
                    });
                }
            }
        }
        for d in &report.diagnostics {
            let color = match d.severity() {
                Severity::Error => "lightcoral",
                Severity::Warning => "khaki",
                Severity::Note => "lightblue",
            };
            for n in &d.nodes {
                anns.push(DotAnnotation {
                    node: *n,
                    color: color.to_string(),
                    note: format!("{} {}", d.code.as_str(), d.code.name()),
                });
            }
        }
        print!("{}", to_dot_annotated(&ddg, "trace", &anns));
        return ExitCode::SUCCESS;
    }
    if opts.lint != LintLevel::Allow {
        let report =
            lint_compiled_opts(&program, &trace, &machine, &strategy, &compiled, &pipeline);
        eprint!("{report}");
        if report.fails_at(opts.lint) {
            eprintln!("ursac: lint failed at level '{}'", opts.lint);
            return ExitCode::from(2);
        }
    }
    if let Some(report) = compiled.fallback.as_ref().filter(|r| r.degraded()) {
        eprintln!("ursac: warning: degraded — {report}");
    }
    println!("# machine: {machine}");
    println!(
        "# {} cycles, {} ops, {} memory ops, {} spill ops, overflow {}",
        compiled.stats.schedule_length,
        compiled.stats.ops,
        compiled.stats.memory_traffic,
        compiled.stats.spill_stores + compiled.stats.spill_loads,
        compiled.stats.reg_overflow
    );
    print!("{}", compiled.vliw);

    if opts.run {
        let exec_machine = if compiled.vliw.num_regs > machine.registers() {
            machine.with_registers(compiled.vliw.num_regs)
        } else {
            machine.clone()
        };
        let memory = seeded_memory(&program, 64, 1);
        match run_vliw(&compiled.vliw, &exec_machine, &memory, &HashMap::new()) {
            Ok(result) => {
                println!(
                    "\n# simulated {} cycles, {} ops",
                    result.cycles, result.ops_executed
                );
                // Show only the cells the program changed.
                let mut cells: Vec<_> = result
                    .memory
                    .iter()
                    .filter(|&(sym, idx, value)| memory.load(sym, idx) != value)
                    .collect();
                cells.sort();
                for (sym, idx, value) in cells {
                    let name = program
                        .symbols
                        .get(sym.index())
                        .cloned()
                        .unwrap_or_else(|| format!("{sym:?}"));
                    println!("# {name}[{idx}] = {value}");
                }
            }
            Err(e) => {
                eprintln!("ursac: simulation fault: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
