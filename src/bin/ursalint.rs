//! `ursalint` — standalone static diagnostics for URSA compilations.
//!
//! Compiles each input program under a battery of strategies and
//! machines, runs the translation validator plus every lint pass on
//! each result, and prints the findings:
//!
//! ```text
//! ursalint prog.tac other.tac         # lint files at warn level
//! ursalint --builtin paper            # the paper's figure-2 + kernels
//! ursalint --deny prog.tac            # warnings fail too (CI gate)
//! ursalint --deny=U0302,U0304 p.tac   # promote only these codes
//! ursalint --level allow prog.tac     # report only, never fail
//! ursalint --bounds prog.tac          # quality analysis (U03xx family)
//! ursalint --bounds=2 prog.tac        # ... with 2 cycles of slack
//! ursalint --format=json prog.tac     # machine-readable output
//! ursalint --strategy spill-only ...  # one strategy instead of the set
//! ursalint --fus 2 --regs 4 prog.tac  # one machine instead of the menu
//! ursalint --machine m.json prog.tac  # machine from JSON
//! ```
//!
//! Default strategy set: the four URSA ladder disciplines (integrated,
//! phased, phased-fu-first, spill-only) plus postpass patching; prepass
//! and goodman-hsu are selectable with `--strategy` but not in the
//! default battery (prepass skips the validator, GH refuses tight
//! files). Default machine menu: homogeneous 4×16, homogeneous 2×3
//! (tight — forces spills), and the classed classic VLIW.
//!
//! Exit status: 0 when every compilation is clean at the chosen level
//! (a bare `--deny` fails on any warning; `--deny=CODE,...` promotes
//! only the listed codes, whatever their default severity), 1 when any
//! compilation fails it (or fails to compile), 2 on usage errors.

use std::process::ExitCode;
use ursa::core::{Strategy, UrsaConfig};
use ursa::ir::ddg::DependenceDag;
use ursa::ir::unroll::find_self_loop;
use ursa::ir::{parse, Program, Trace};
use ursa::lint::bounds::{analyze_quality, BoundsOptions};
use ursa::lint::{lint_compiled_opts, Code, LintLevel, LintReport};
use ursa::machine::Machine;
use ursa::sched::{try_compile, CompileStrategy, PipelineOptions};

use ursa::workloads::kernels::kernel_suite;
use ursa::workloads::paper::figure2_block;

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

struct Options {
    files: Vec<String>,
    builtin: Vec<String>,
    level: LintLevel,
    deny_codes: Vec<Code>,
    bounds: Option<u64>,
    format: Format,
    strategy: Option<String>,
    fus: Option<u32>,
    regs: Option<u32>,
    classic: bool,
    pipelined: bool,
    machine_file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        builtin: Vec::new(),
        level: LintLevel::Warn,
        deny_codes: Vec::new(),
        bounds: None,
        format: Format::Text,
        strategy: None,
        fus: None,
        regs: None,
        classic: false,
        pipelined: false,
        machine_file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--builtin" => opts.builtin.push(take("--builtin")?),
            "--level" => {
                let name = take("--level")?;
                opts.level = LintLevel::parse(&name)
                    .ok_or_else(|| format!("--level: unknown level '{name}'"))?;
            }
            "--deny" => opts.level = LintLevel::Deny,
            "--bounds" => opts.bounds = Some(0),
            "--format" => {
                opts.format = parse_format(&take("--format")?)?;
            }
            "--strategy" => opts.strategy = Some(take("--strategy")?),
            "--fus" => opts.fus = Some(take("--fus")?.parse().map_err(|e| format!("--fus: {e}"))?),
            "--regs" => {
                opts.regs = Some(
                    take("--regs")?
                        .parse()
                        .map_err(|e| format!("--regs: {e}"))?,
                )
            }
            "--classic" => opts.classic = true,
            "--pipelined" => opts.pipelined = true,
            "--machine" => opts.machine_file = Some(take("--machine")?),
            "--help" | "-h" => {
                return Err("usage: ursalint [files.tac ...] [--builtin paper] \
                            [--level allow|warn|deny | --deny[=CODES]] [--bounds[=SLACK]] \
                            [--format text|json] [--strategy NAME] \
                            [--fus N --regs N | --classic | --pipelined | --machine FILE]"
                    .to_string())
            }
            other if other.starts_with("--deny=") => {
                for code in other["--deny=".len()..].split(',') {
                    let parsed = Code::parse(code.trim())
                        .ok_or_else(|| format!("--deny: unknown code '{code}'"))?;
                    opts.deny_codes.push(parsed);
                }
            }
            other if other.starts_with("--bounds=") => {
                let slack = other["--bounds=".len()..]
                    .parse()
                    .map_err(|e| format!("--bounds: {e}"))?;
                opts.bounds = Some(slack);
            }
            other if other.starts_with("--format=") => {
                opts.format = parse_format(&other["--format=".len()..])?;
            }
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && opts.builtin.is_empty() {
        return Err("no inputs (give .tac files or --builtin paper; try --help)".to_string());
    }
    if !opts.deny_codes.is_empty() && opts.bounds.is_none() {
        // Denying a U03xx code without the analysis would silently pass.
        if opts
            .deny_codes
            .iter()
            .any(|c| c.as_str().starts_with("U03"))
        {
            opts.bounds = Some(0);
        }
    }
    Ok(opts)
}

fn parse_format(name: &str) -> Result<Format, String> {
    match name {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        other => Err(format!("--format: unknown format '{other}' (text, json)")),
    }
}

/// The programs to lint: named `(label, program)` pairs.
fn gather_programs(opts: &Options) -> Result<Vec<(String, Program)>, String> {
    let mut out = Vec::new();
    for file in &opts.files {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let program = parse(&source).map_err(|e| format!("{file}: {e}"))?;
        out.push((file.clone(), program));
    }
    for b in &opts.builtin {
        match b.as_str() {
            "paper" => {
                out.push(("figure2".to_string(), figure2_block()));
                for k in kernel_suite() {
                    out.push((k.name, k.program));
                }
            }
            other => return Err(format!("--builtin: unknown suite '{other}'")),
        }
    }
    Ok(out)
}

fn machine_menu(opts: &Options) -> Result<Vec<Machine>, String> {
    if let Some(path) = &opts.machine_file {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let machine = Machine::from_json(&json).map_err(|e| e.to_string())?;
        return Ok(vec![machine]);
    }
    if opts.classic || opts.pipelined {
        let base = if opts.pipelined {
            Machine::pipelined_vliw()
        } else {
            Machine::classic_vliw()
        };
        return match opts.regs {
            Some(r) => base
                .try_with_registers(r)
                .map(|m| vec![m])
                .map_err(|e| e.to_string()),
            None => Ok(vec![base]),
        };
    }
    if opts.fus.is_some() || opts.regs.is_some() {
        let m = Machine::try_homogeneous(opts.fus.unwrap_or(4), opts.regs.unwrap_or(16))
            .map_err(|e| e.to_string())?;
        return Ok(vec![m]);
    }
    // Default menu: comfortable, tight (forces the spill machinery), and
    // a classed machine with multi-cycle latencies.
    Ok(vec![
        Machine::homogeneous(4, 16),
        Machine::homogeneous(2, 3),
        Machine::classic_vliw(),
    ])
}

fn strategy_set(opts: &Options) -> Result<Vec<(String, CompileStrategy)>, String> {
    let ursa = |s: Strategy| {
        CompileStrategy::Ursa(UrsaConfig {
            strategy: s,
            ..UrsaConfig::default()
        })
    };
    let default: Vec<(&str, CompileStrategy)> = vec![
        ("integrated", ursa(Strategy::Integrated)),
        ("phased", ursa(Strategy::Phased)),
        ("phased-fu-first", ursa(Strategy::PhasedFuFirst)),
        ("spill-only", ursa(Strategy::SpillOnly)),
        ("postpass", CompileStrategy::Postpass),
    ];
    // Selectable but not in the default battery: prepass skips the
    // validator, goodman-hsu refuses tight register files.
    let extra: Vec<(&str, CompileStrategy)> = vec![
        ("prepass", CompileStrategy::Prepass),
        ("goodman-hsu", CompileStrategy::GoodmanHsu),
    ];
    match &opts.strategy {
        None => Ok(default
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .collect()),
        Some(name) => default
            .into_iter()
            .chain(extra)
            .find(|(n, _)| n == name)
            .map(|(n, s)| vec![(n.to_string(), s)])
            .ok_or_else(|| {
                format!(
                    "--strategy: unknown '{name}' (integrated, phased, phased-fu-first, \
                     spill-only, postpass, prepass, goodman-hsu)"
                )
            }),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let programs = match gather_programs(&opts) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let machines = match machine_menu(&opts) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let strategies = match strategy_set(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let pipeline = PipelineOptions {
        lint: opts.level,
        bounds: opts.bounds,
        ..Default::default()
    };

    let mut checked = 0usize;
    let mut findings = 0usize;
    let mut failed = false;
    let mut json_rows: Vec<ursa::json::Value> = Vec::new();
    for (label, program) in &programs {
        // Same trace choice as ursac: the self-loop body when one
        // exists, else the entry block.
        let block = find_self_loop(program).unwrap_or(0);
        let trace = Trace::single(block);
        for machine in &machines {
            for (sname, strategy) in &strategies {
                let compiled = match try_compile(program, &trace, machine, strategy.clone()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("ursalint: {label} [{machine}, {sname}]: compile error: {e}");
                        failed = true;
                        continue;
                    }
                };
                checked += 1;
                let report =
                    lint_compiled_opts(program, &trace, machine, strategy, &compiled, &pipeline);
                if opts.format == Format::Json {
                    let mut fields = vec![
                        ("program", ursa::json::Value::from(label.as_str())),
                        ("machine", ursa::json::Value::from(machine.to_string())),
                        ("strategy", ursa::json::Value::from(sname.as_str())),
                        (
                            "schedule_length",
                            ursa::json::Value::from(compiled.stats.schedule_length),
                        ),
                        ("diagnostics", report.to_json_value()),
                    ];
                    if let Some(slack) = opts.bounds {
                        let ddg = DependenceDag::build_with(program, &trace, pipeline.ddg);
                        let (quality, _) =
                            analyze_quality(&ddg, machine, &compiled, BoundsOptions { slack });
                        fields.push(("quality", quality.to_json_value()));
                    }
                    json_rows.push(ursa::json::Value::object(fields));
                } else {
                    print_report(label, machine, sname, &report);
                }
                findings += report.diagnostics.len();
                if report.fails_at(opts.level)
                    || report
                        .diagnostics
                        .iter()
                        .any(|d| opts.deny_codes.contains(&d.code))
                {
                    failed = true;
                }
            }
        }
    }
    if opts.format == Format::Json {
        println!("{}", ursa::json::Value::array(json_rows).to_string_pretty());
    }
    eprintln!(
        "ursalint: {checked} compilation(s) checked, {findings} finding(s), level '{}'",
        opts.level
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(label: &str, machine: &Machine, strategy: &str, report: &LintReport) {
    if report.is_clean() {
        return;
    }
    println!("{label} [{machine}, {strategy}]:");
    for d in &report.diagnostics {
        for line in d.to_string().lines() {
            println!("  {line}");
        }
    }
}
