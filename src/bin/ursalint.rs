//! `ursalint` — standalone static diagnostics for URSA compilations.
//!
//! Compiles each input program under a battery of strategies and
//! machines, runs the translation validator plus every lint pass on
//! each result, and prints the findings:
//!
//! ```text
//! ursalint prog.tac other.tac         # lint files at warn level
//! ursalint --builtin paper            # the paper's figure-2 + kernels
//! ursalint --deny prog.tac            # warnings fail too (CI gate)
//! ursalint --level allow prog.tac     # report only, never fail
//! ursalint --strategy spill-only ...  # one strategy instead of the set
//! ursalint --fus 2 --regs 4 prog.tac  # one machine instead of the menu
//! ursalint --machine m.json prog.tac  # machine from JSON
//! ```
//!
//! Default strategy set: the four URSA ladder disciplines (integrated,
//! phased, phased-fu-first, spill-only) plus postpass patching. Default
//! machine menu: homogeneous 4×16, homogeneous 2×3 (tight — forces
//! spills), and the classed classic VLIW.
//!
//! Exit status: 0 when every compilation is clean at the chosen level,
//! 1 when any fails it (or fails to compile), 2 on usage errors.

use std::process::ExitCode;
use ursa::core::{Strategy, UrsaConfig};
use ursa::ir::unroll::find_self_loop;
use ursa::ir::{parse, Program, Trace};
use ursa::lint::{lint_compiled, LintLevel, LintReport};
use ursa::machine::Machine;
use ursa::sched::{try_compile, CompileStrategy};
use ursa::workloads::kernels::kernel_suite;
use ursa::workloads::paper::figure2_block;

struct Options {
    files: Vec<String>,
    builtin: Vec<String>,
    level: LintLevel,
    strategy: Option<String>,
    fus: Option<u32>,
    regs: Option<u32>,
    classic: bool,
    pipelined: bool,
    machine_file: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        builtin: Vec::new(),
        level: LintLevel::Warn,
        strategy: None,
        fus: None,
        regs: None,
        classic: false,
        pipelined: false,
        machine_file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--builtin" => opts.builtin.push(take("--builtin")?),
            "--level" => {
                let name = take("--level")?;
                opts.level = LintLevel::parse(&name)
                    .ok_or_else(|| format!("--level: unknown level '{name}'"))?;
            }
            "--deny" => opts.level = LintLevel::Deny,
            "--strategy" => opts.strategy = Some(take("--strategy")?),
            "--fus" => opts.fus = Some(take("--fus")?.parse().map_err(|e| format!("--fus: {e}"))?),
            "--regs" => {
                opts.regs = Some(
                    take("--regs")?
                        .parse()
                        .map_err(|e| format!("--regs: {e}"))?,
                )
            }
            "--classic" => opts.classic = true,
            "--pipelined" => opts.pipelined = true,
            "--machine" => opts.machine_file = Some(take("--machine")?),
            "--help" | "-h" => {
                return Err("usage: ursalint [files.tac ...] [--builtin paper] \
                            [--level allow|warn|deny | --deny] [--strategy NAME] \
                            [--fus N --regs N | --classic | --pipelined | --machine FILE]"
                    .to_string())
            }
            other if other.starts_with('-') => return Err(format!("unknown option '{other}'")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && opts.builtin.is_empty() {
        return Err("no inputs (give .tac files or --builtin paper; try --help)".to_string());
    }
    Ok(opts)
}

/// The programs to lint: named `(label, program)` pairs.
fn gather_programs(opts: &Options) -> Result<Vec<(String, Program)>, String> {
    let mut out = Vec::new();
    for file in &opts.files {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let program = parse(&source).map_err(|e| format!("{file}: {e}"))?;
        out.push((file.clone(), program));
    }
    for b in &opts.builtin {
        match b.as_str() {
            "paper" => {
                out.push(("figure2".to_string(), figure2_block()));
                for k in kernel_suite() {
                    out.push((k.name, k.program));
                }
            }
            other => return Err(format!("--builtin: unknown suite '{other}'")),
        }
    }
    Ok(out)
}

fn machine_menu(opts: &Options) -> Result<Vec<Machine>, String> {
    if let Some(path) = &opts.machine_file {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let machine = Machine::from_json(&json).map_err(|e| e.to_string())?;
        return Ok(vec![machine]);
    }
    if opts.classic || opts.pipelined {
        let base = if opts.pipelined {
            Machine::pipelined_vliw()
        } else {
            Machine::classic_vliw()
        };
        return match opts.regs {
            Some(r) => base
                .try_with_registers(r)
                .map(|m| vec![m])
                .map_err(|e| e.to_string()),
            None => Ok(vec![base]),
        };
    }
    if opts.fus.is_some() || opts.regs.is_some() {
        let m = Machine::try_homogeneous(opts.fus.unwrap_or(4), opts.regs.unwrap_or(16))
            .map_err(|e| e.to_string())?;
        return Ok(vec![m]);
    }
    // Default menu: comfortable, tight (forces the spill machinery), and
    // a classed machine with multi-cycle latencies.
    Ok(vec![
        Machine::homogeneous(4, 16),
        Machine::homogeneous(2, 3),
        Machine::classic_vliw(),
    ])
}

fn strategy_set(opts: &Options) -> Result<Vec<(String, CompileStrategy)>, String> {
    let ursa = |s: Strategy| {
        CompileStrategy::Ursa(UrsaConfig {
            strategy: s,
            ..UrsaConfig::default()
        })
    };
    let all: Vec<(&str, CompileStrategy)> = vec![
        ("integrated", ursa(Strategy::Integrated)),
        ("phased", ursa(Strategy::Phased)),
        ("phased-fu-first", ursa(Strategy::PhasedFuFirst)),
        ("spill-only", ursa(Strategy::SpillOnly)),
        ("postpass", CompileStrategy::Postpass),
    ];
    match &opts.strategy {
        None => Ok(all.into_iter().map(|(n, s)| (n.to_string(), s)).collect()),
        Some(name) => all
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(n, s)| vec![(n.to_string(), s)])
            .ok_or_else(|| {
                format!(
                    "--strategy: unknown '{name}' (integrated, phased, phased-fu-first, \
                     spill-only, postpass)"
                )
            }),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let programs = match gather_programs(&opts) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let machines = match machine_menu(&opts) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };
    let strategies = match strategy_set(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("ursalint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut checked = 0usize;
    let mut findings = 0usize;
    let mut failed = false;
    for (label, program) in &programs {
        // Same trace choice as ursac: the self-loop body when one
        // exists, else the entry block.
        let block = find_self_loop(program).unwrap_or(0);
        let trace = Trace::single(block);
        for machine in &machines {
            for (sname, strategy) in &strategies {
                let compiled = match try_compile(program, &trace, machine, strategy.clone()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("ursalint: {label} [{machine}, {sname}]: compile error: {e}");
                        failed = true;
                        continue;
                    }
                };
                checked += 1;
                let report = lint_compiled(program, &trace, machine, strategy, &compiled);
                print_report(label, machine, sname, &report);
                findings += report.diagnostics.len();
                if report.fails_at(opts.level) {
                    failed = true;
                }
            }
        }
    }
    eprintln!(
        "ursalint: {checked} compilation(s) checked, {findings} finding(s), level '{}'",
        opts.level
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(label: &str, machine: &Machine, strategy: &str, report: &LintReport) {
    if report.is_clean() {
        return;
    }
    println!("{label} [{machine}, {strategy}]:");
    for d in &report.diagnostics {
        for line in d.to_string().lines() {
            println!("  {line}");
        }
    }
}
