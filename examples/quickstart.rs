//! Quickstart: run the paper's Figure 2 example through the full URSA
//! pipeline — measure, reduce, assign, generate code, and execute it on
//! the VLIW simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::collections::HashMap;
use ursa::core::{allocate, measure, AllocCtx, MeasureOptions, UrsaConfig};
use ursa::ir::ddg::DependenceDag;
use ursa::machine::Machine;
use ursa::sched::{assign_registers, list_schedule};
use ursa::vm::{check_equivalence, Memory};
use ursa::workloads::paper::{figure2_block, figure2_letter, FIGURE2_SOURCE};

fn main() {
    println!("=== URSA quickstart: the paper's Figure 2 block ===\n");
    println!("{FIGURE2_SOURCE}");

    let program = figure2_block();
    let machine = Machine::homogeneous(3, 4);
    println!("Target machine: {machine}\n");

    // 1. Build the dependence DAG (single root, single leaf).
    let ddg = DependenceDag::from_entry_block(&program);
    println!(
        "Dependence DAG: {} nodes, {} edges",
        ddg.dag().node_count(),
        ddg.dag().edge_count()
    );

    // 2. Measure worst-case requirements over all legal schedules.
    let mut ctx = AllocCtx::new(ddg.clone(), &machine);
    let measurement = measure(&mut ctx, MeasureOptions::default());
    println!("\nWorst-case requirements (any schedule):");
    for rm in &measurement.resources {
        println!("  {}", rm.requirement);
    }
    println!("\nMinimum chain decomposition (registers):");
    let regs = measurement
        .of(ursa::core::ResourceKind::Registers)
        .expect("registers measured");
    for chain in regs.decomposition.chains() {
        let letters: Vec<String> = chain.iter().map(|&n| figure2_letter(n)).collect();
        println!("  {{{}}}", letters.join(", "));
    }

    // 3. Run the allocation phase: transformations until everything fits.
    let outcome = allocate(ddg, &machine, &UrsaConfig::default());
    println!("\nURSA allocation steps:");
    for step in &outcome.steps {
        println!(
            "  {} on {}: {} edges, {} spills (excess {} -> {}, cp {})",
            step.kind,
            step.resource,
            step.edges_added,
            step.spills,
            step.excess_before,
            step.excess_after,
            step.critical_path_after
        );
    }
    println!(
        "Residual excess: {} | critical path: {} cycles",
        outcome.residual_excess, outcome.critical_path
    );
    assert_eq!(outcome.residual_excess, 0);

    // 4. Assignment phase: schedule and bind registers.
    let schedule = list_schedule(&outcome.ddg, &machine);
    let vliw = assign_registers(&outcome.ddg, &schedule, &machine)
        .expect("URSA guarantees the requirements fit");
    println!("\nGenerated VLIW code ({} cycles):", vliw.cycle_count());
    print!("{vliw}");

    // 5. Validate against the sequential reference.
    let mut memory = Memory::new();
    memory.store(ursa::ir::SymbolId(0), 0, 7);
    check_equivalence(&program, &vliw, &machine, &memory, &HashMap::new())
        .expect("compiled code is semantically equivalent");
    println!("\nSemantic equivalence vs. sequential reference: OK");
}
