//! Resource-constrained software pipelining via loop unrolling — the
//! paper's §6 future-work direction, built on this reproduction.
//!
//! A loop body is unrolled by increasing factors; each unrolled body is
//! a straight-line trace whose parallelism grows with the factor. URSA
//! then *measures* how much of that parallelism the machine can host
//! and sequentializes or spills the rest, yielding steady-state cycles
//! per original iteration. The sum reduction shows the limit: its
//! loop-carried accumulator chains across copies, so unrolling buys
//! little until the machine's latency is the bottleneck anyway.
//!
//! ```sh
//! cargo run --example software_pipelining
//! ```

use std::collections::HashMap;
use ursa::ir::unroll::unroll_self_loop;
use ursa::machine::Machine;
use ursa::sched::{compile, CompileStrategy};
use ursa::vm::equiv::seeded_memory;
use ursa::vm::seq::run_sequential;
use ursa::workloads::loops::loop_suite;

fn main() {
    let machine = Machine::homogeneous(4, 8);
    println!("Machine: {machine}\n");
    println!(
        "{:>12} | {:>6} | {:>10} | {:>12} | {:>7}",
        "loop", "unroll", "body cyc", "cyc/iter", "spills"
    );
    println!("{}", "-".repeat(60));

    for kernel in loop_suite() {
        // Reference semantics once per kernel.
        let memory = seeded_memory(&kernel.program, 128, 3);
        let reference = run_sequential(&kernel.program, &memory, &HashMap::new(), 1_000_000)
            .expect("loop executes");

        for factor in [1usize, 2, 4, 8] {
            assert_eq!(kernel.trip_count % factor as i64, 0);
            let unrolled = unroll_self_loop(&kernel.program, 1, factor).expect("self loop");
            // Unrolling must not change what the program computes.
            let check = run_sequential(&unrolled, &memory, &HashMap::new(), 1_000_000)
                .expect("unrolled loop executes");
            assert_eq!(reference.memory, check.memory, "{} x{factor}", kernel.name);

            // Compile the unrolled body as a straight-line trace.
            let compiled = compile(
                &unrolled,
                &ursa::ir::Trace::single(1),
                &machine,
                CompileStrategy::Ursa(Default::default()),
            );
            let body_cycles = compiled.stats.schedule_length;
            println!(
                "{:>12} | {:>6} | {:>10} | {:>12.2} | {:>7}",
                kernel.name,
                factor,
                body_cycles,
                body_cycles as f64 / factor as f64,
                compiled.stats.spill_stores + compiled.stats.spill_loads,
            );
        }
        println!("{}", "-".repeat(60));
    }
    println!(
        "\nCycles per source iteration fall as the unrolled body exposes\n\
         parallelism across iterations — until the machine's resources\n\
         (URSA's measured bound) or a loop-carried chain (sum) caps it."
    );
}
