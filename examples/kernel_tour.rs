//! Tour of the kernel suite on the classed "classic VLIW" machine:
//! compile every kernel with URSA, validate the generated wide words
//! against the sequential reference, and report utilization.
//!
//! ```sh
//! cargo run --example kernel_tour
//! ```

use std::collections::HashMap;
use ursa::machine::Machine;
use ursa::sched::{compile_entry_block, CompileStrategy};
use ursa::vm::equiv::{check_equivalence, seeded_memory};
use ursa::vm::wide::run_vliw;
use ursa::workloads::kernel_suite;

fn main() {
    let machine = Machine::classic_vliw();
    println!("Machine: {machine}\n");
    println!(
        "{:>12} | {:>5} | {:>7} | {:>8} | {:>7} | {:>9} | {:>6}",
        "kernel", "ops", "cycles", "ops/cyc", "spills", "seq-edges", "equiv"
    );
    println!("{}", "-".repeat(72));

    for kernel in kernel_suite() {
        let compiled = compile_entry_block(
            &kernel.program,
            &machine,
            CompileStrategy::Ursa(Default::default()),
        );
        // The Figure 2 example divides; give it a benign input. All
        // other kernels are division-free.
        let memory = if kernel.name == "fig2" {
            let mut m = ursa::vm::Memory::new();
            m.store(ursa::ir::SymbolId(0), 0, 7);
            m
        } else {
            seeded_memory(&kernel.program, 128, 0xC0FFEE)
        };
        let equiv = check_equivalence(
            &kernel.program,
            &compiled.vliw,
            &machine,
            &memory,
            &HashMap::new(),
        );
        let run = run_vliw(&compiled.vliw, &machine, &memory, &HashMap::new());
        let cycles = run.as_ref().map(|r| r.cycles).unwrap_or(0);
        println!(
            "{:>12} | {:>5} | {:>7} | {:>8.2} | {:>7} | {:>9} | {:>6}",
            kernel.name,
            compiled.stats.ops,
            cycles,
            compiled.vliw.ops_per_cycle(),
            compiled.stats.spill_stores + compiled.stats.spill_loads,
            compiled.stats.sequence_edges,
            if equiv.is_ok() { "OK" } else { "FAIL" }
        );
        equiv.unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    }
    println!("\nEvery kernel compiled by URSA executes identically to the");
    println!("sequential reference on the cycle-accurate VLIW simulator.");
}
