//! Using URSA's measurement as a machine-design tool.
//!
//! Because the measurement phase computes the worst-case resource
//! needs of a program *before* committing to a schedule (paper §3), it
//! doubles as a design-space probe: how many functional units and
//! registers would this workload actually exploit? This example sweeps
//! the design space for two kernels with opposite shapes and prints
//! where extra hardware stops helping.
//!
//! ```sh
//! cargo run --example machine_design
//! ```

use ursa::core::{measure, AllocCtx, MeasureOptions, ResourceKind};
use ursa::ir::ddg::DependenceDag;
use ursa::machine::{FuClass, Machine};
use ursa::sched::{compile_entry_block, CompileStrategy};
use ursa::workloads::kernels::{estrin, horner};

fn main() {
    for kernel in [estrin(4), horner(12)] {
        println!(
            "=== {} ({} instructions) ===",
            kernel.name,
            kernel.program.instr_count()
        );

        // What the program could use, independent of any machine.
        let probe = Machine::homogeneous(64, 64);
        let ddg = DependenceDag::from_entry_block(&kernel.program);
        let mut ctx = AllocCtx::new(ddg, &probe);
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu_need = m
            .of(ResourceKind::Fu(FuClass::Universal))
            .expect("homogeneous probe")
            .requirement
            .required;
        let reg_need = m
            .of(ResourceKind::Registers)
            .expect("registers measured")
            .requirement
            .required;
        println!("Intrinsic worst-case needs: {fu_need} functional units, {reg_need} registers\n");

        println!(
            "{:>4} {:>5} | {:>7} | {:>8}",
            "fus", "regs", "cycles", "ops/cyc"
        );
        println!("{}", "-".repeat(34));
        for fus in [1u32, 2, 4, 8] {
            for regs in [4u32, 8, 16] {
                let machine = Machine::homogeneous(fus, regs);
                let c = compile_entry_block(
                    &kernel.program,
                    &machine,
                    CompileStrategy::Ursa(Default::default()),
                );
                println!(
                    "{:>4} {:>5} | {:>7} | {:>8.2}",
                    fus,
                    regs,
                    c.stats.schedule_length,
                    c.vliw.ops_per_cycle()
                );
            }
        }
        println!(
            "\nHardware beyond the intrinsic needs ({fu_need} FUs, {reg_need} regs) buys nothing;\n\
             the sweep's cycle counts flatten exactly there.\n"
        );
    }
}
