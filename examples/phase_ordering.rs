//! The phase-ordering problem, made visible (paper §1).
//!
//! Compiles one pressure-heavy kernel under all four phase orderings
//! while shrinking the register file, and prints how each discipline
//! degrades: prepass over-serializes, postpass stretches the schedule
//! with patched spill code, Goodman–Hsu overflows the file (it cannot
//! spill), and URSA degrades gracefully by trading parallelism it
//! measured it could not keep.
//!
//! ```sh
//! cargo run --example phase_ordering
//! ```

use ursa::machine::Machine;
use ursa::sched::{compile_entry_block, CompileStrategy};
use ursa::workloads::kernels::matmul;

fn main() {
    let kernel = matmul(3);
    println!(
        "Kernel: {} ({} instructions)\n",
        kernel.name,
        kernel.program.instr_count()
    );
    println!("Machine: 4 universal FUs, sweeping registers 16 -> 4\n");
    println!(
        "{:>5} | {:>10} | {:>8} | {:>7} | {:>7} | {:>9}",
        "regs", "strategy", "cycles", "spills", "memops", "overflow"
    );
    println!("{}", "-".repeat(62));

    for regs in [16u32, 12, 8, 6, 4] {
        let machine = Machine::homogeneous(4, regs);
        for strategy in [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ] {
            let name = strategy.name();
            let c = compile_entry_block(&kernel.program, &machine, strategy);
            println!(
                "{:>5} | {:>10} | {:>8} | {:>7} | {:>7} | {:>9}",
                regs,
                name,
                c.stats.schedule_length,
                c.stats.spill_stores + c.stats.spill_loads,
                c.stats.memory_traffic,
                c.stats.reg_overflow
            );
        }
        println!("{}", "-".repeat(62));
    }
    println!(
        "\nReading the table: URSA keeps cycles lowest as registers shrink\n\
         because it chooses between sequencing and spilling per region;\n\
         postpass pays with inserted spill cycles, prepass with anti-\n\
         dependence serialization, and Goodman–Hsu with code that no\n\
         longer fits the machine's register file (overflow > 0)."
    );
}
