# Livermore loop 1 (hydro fragment), one unrolled iteration:
#   x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])
# Compile with:  ursac examples/data/hydro.tac --fus 4 --regs 8 --run
v0 = const 17        # q
v1 = const 3         # r
v2 = const 5         # t
v3 = load z[10]
v4 = load z[11]
v5 = mul v1, v3
v6 = mul v2, v4
v7 = add v5, v6
v8 = load y[0]
v9 = mul v8, v7
v10 = add v0, v9
store x[0], v10
