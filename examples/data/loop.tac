# A counted self-loop: b[i] = 3 * a[i] for i in 0..24.
# Try:  ursac examples/data/loop.tac --unroll 4 --measure
block entry:
v0 = const 0
jmp head
block head @ 24:
v1 = load a[v0]
v2 = mul v1, 3
store b[v0], v2
v0 = add v0, 1
v3 = cmplt v0, 24
br v3, head, done
block done:
ret
